// Dynamic-graph tests: op-log semantics and rejection accounting, CSDB delta
// byte-identity against a full rebuild, mutation replay parsing, row-block
// fingerprints and structure-aware plan-cache invalidation, incremental
// refresh bit-identity across thread counts, and the serving refresh hook.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "graph/graph_io.h"
#include "graph/mutable_graph.h"
#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"
#include "omega/engine.h"
#include "omega/incremental.h"
#include "serve/server.h"
#include "sparse/csdb_ops.h"
#include "sparse/spmm_plan.h"

namespace omega {
namespace {

using graph::CsdbMatrix;
using graph::Graph;
using graph::Mutation;
using graph::MutationKind;
using graph::MutableGraph;
using graph::NodeId;

Graph SmallGraph() {
  // Node 5 is isolated (degree 0): CSDB must carry its empty row.
  const std::vector<graph::Edge> edges = {
      {0, 1, 1.0f}, {0, 2, 1.0f}, {1, 2, 1.0f}, {3, 4, 1.0f}};
  return Graph::FromEdges(6, edges, /*undirected=*/true).value();
}

Graph RmatGraph(uint32_t scale = 9, uint64_t edges = 4000) {
  graph::RmatParams params;
  params.scale = scale;
  params.num_edges = edges;
  return graph::GenerateRmat(params).value();
}

bool HasEdge(const Graph& g, NodeId u, NodeId v) {
  const NodeId* nbrs = g.neighbors(u);
  for (uint32_t k = 0; k < g.degree(u); ++k) {
    if (nbrs[k] == v) return true;
  }
  return false;
}

void ExpectCsdbIdentical(const CsdbMatrix& a, const CsdbMatrix& b) {
  EXPECT_EQ(a.num_rows(), b.num_rows());
  EXPECT_EQ(a.num_cols(), b.num_cols());
  EXPECT_EQ(a.perm(), b.perm());
  EXPECT_EQ(a.deg_list(), b.deg_list());
  EXPECT_EQ(a.deg_ind(), b.deg_ind());
  EXPECT_EQ(a.block_ptr(), b.block_ptr());
  EXPECT_EQ(a.col_list(), b.col_list());
  ASSERT_EQ(a.nnz_list().size(), b.nnz_list().size());
  EXPECT_EQ(0, std::memcmp(a.nnz_list().data(), b.nnz_list().data(),
                           a.nnz_list().size() * sizeof(float)));
}

TEST(MutableGraphTest, AppliesAndRejectsDeterministically) {
  MutableGraph mg(SmallGraph(), /*num_workers=*/2);
  EXPECT_EQ(mg.epoch(), 0u);

  mg.Log(0, {MutationKind::kInsertEdge, 5, 3, 2.0f});   // degree 0 -> 1
  mg.Log(0, {MutationKind::kInsertEdge, 0, 1, 1.0f});   // duplicate
  mg.Log(1, {MutationKind::kDeleteEdge, 3, 4, 0.0f});   // node 4 isolated
  mg.Log(1, {MutationKind::kDeleteEdge, 1, 4, 0.0f});   // absent
  mg.Log(0, {MutationKind::kUpdateWeight, 0, 2, 7.0f});
  mg.Log(1, {MutationKind::kUpdateWeight, 2, 4, 7.0f});  // absent
  mg.Log(0, {MutationKind::kInsertEdge, 2, 2, 1.0f});    // self loop
  mg.Log(0, {MutationKind::kInsertEdge, 0, 99, 1.0f});   // out of range
  EXPECT_EQ(mg.pending(), 8u);

  const graph::GraphDelta delta = mg.Synchronize();
  EXPECT_EQ(mg.pending(), 0u);
  EXPECT_EQ(mg.epoch(), 1u);
  EXPECT_EQ(delta.applied.size(), 3u);
  EXPECT_EQ(delta.rejected_duplicates, 1u);
  EXPECT_EQ(delta.rejected_missing, 2u);
  EXPECT_EQ(delta.rejected_self_loops, 1u);
  EXPECT_EQ(delta.rejected_out_of_range, 1u);
  EXPECT_EQ(delta.touched_nodes, (std::vector<NodeId>{0, 2, 3, 4, 5}));

  const Graph& g = mg.graph();
  EXPECT_TRUE(HasEdge(g, 5, 3));
  EXPECT_FALSE(HasEdge(g, 3, 4));
  EXPECT_EQ(g.degree(4), 0u);

  // Nothing pending: no rebuild, no epoch bump.
  const graph::GraphDelta empty = mg.Synchronize();
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(mg.epoch(), 1u);
}

TEST(MutableGraphTest, ConcurrentLoggingMatchesSequential) {
  const Graph base = RmatGraph();
  const int kWorkers = 8;
  const int kPerWorker = 50;

  // Per-worker streams generated up front so both runs log identical content.
  std::vector<std::vector<Mutation>> streams(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    streams[w] = graph::SyntheticMutations(base, kPerWorker, 100 + w);
  }

  MutableGraph concurrent(base, kWorkers);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      for (const Mutation& m : streams[w]) concurrent.Log(w, m);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(concurrent.pending(),
            static_cast<uint64_t>(kWorkers * kPerWorker));

  MutableGraph sequential(base, kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    for (const Mutation& m : streams[w]) sequential.Log(w, m);
  }

  // The merge order is (worker, append index), not arrival time, so the two
  // rebuilt graphs must be structurally identical.
  const graph::GraphDelta a = concurrent.Synchronize();
  const graph::GraphDelta b = sequential.Synchronize();
  EXPECT_EQ(a.applied.size(), b.applied.size());
  EXPECT_EQ(a.rejected_total(), b.rejected_total());
  ExpectCsdbIdentical(CsdbMatrix::FromGraph(concurrent.graph()),
                      CsdbMatrix::FromGraph(sequential.graph()));
}

TEST(CsdbDeltaTest, RandomizedSequencesMatchFullRebuild) {
  MutableGraph mg(RmatGraph());
  CsdbMatrix csdb = CsdbMatrix::FromGraph(mg.graph());
  for (int round = 0; round < 6; ++round) {
    const std::vector<Mutation> muts =
        graph::SyntheticMutations(mg.graph(), 32, 500 + round);
    for (const Mutation& m : muts) mg.Log(0, m);
    const graph::GraphDelta delta = mg.Synchronize();
    ASSERT_FALSE(delta.empty());

    auto res = sparse::ApplyDelta(csdb, mg.graph(), delta.touched_nodes);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res.value().touched_rows + res.value().reused_rows,
              csdb.num_rows());
    EXPECT_GT(res.value().reused_rows, 0u);
    ExpectCsdbIdentical(res.value().matrix, CsdbMatrix::FromGraph(mg.graph()));
    csdb = std::move(res.value().matrix);
  }
}

TEST(CsdbDeltaTest, DegreeTransitionsAndIsolatedRows) {
  MutableGraph mg(SmallGraph(), 1);
  CsdbMatrix csdb = CsdbMatrix::FromGraph(mg.graph());

  auto apply_and_check =
      [&](std::vector<Mutation> muts) -> graph::GraphDelta {
    for (const Mutation& m : muts) mg.Log(0, m);
    graph::GraphDelta delta = mg.Synchronize();
    EXPECT_FALSE(delta.empty());
    auto res = sparse::ApplyDelta(csdb, mg.graph(), delta.touched_nodes);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    if (res.ok()) {
      ExpectCsdbIdentical(res.value().matrix,
                          CsdbMatrix::FromGraph(mg.graph()));
      csdb = std::move(res.value().matrix);
    }
    return delta;
  };

  // Degree 0 -> 1: the isolated node joins a block, splitting the boundary.
  apply_and_check({{MutationKind::kInsertEdge, 5, 0, 1.0f}});
  // Row becomes isolated again: both its edges (one just added) removed.
  apply_and_check({{MutationKind::kDeleteEdge, 5, 0, 0.0f},
                   {MutationKind::kDeleteEdge, 3, 4, 0.0f}});
  EXPECT_EQ(mg.graph().degree(5), 0u);
  EXPECT_EQ(mg.graph().degree(4), 0u);
  // Duplicate insert in the same batch as a real one: applied once.
  const graph::GraphDelta d = apply_and_check(
      {{MutationKind::kInsertEdge, 3, 4, 2.0f},
       {MutationKind::kInsertEdge, 3, 4, 2.0f}});
  EXPECT_EQ(d.applied.size(), 1u);
  EXPECT_EQ(d.rejected_duplicates, 1u);
}

TEST(MutationStreamReaderTest, ParsesOpsCommentsAndBareEdges) {
  const std::string path = ::testing::TempDir() + "/mutations_ok.txt";
  {
    std::ofstream out(path);
    out << "# comment\n"
        << "a 0 1 2.5\n"
        << "d 2 3\n"
        << "u 1 2 0.5\n"
        << "\n"
        << "4 5\n";  // bare edge line: an insert with default weight
  }
  auto muts = graph::LoadMutationsText(path);
  ASSERT_TRUE(muts.ok()) << muts.status().ToString();
  ASSERT_EQ(muts.value().size(), 4u);
  EXPECT_EQ(muts.value()[0].kind, MutationKind::kInsertEdge);
  EXPECT_FLOAT_EQ(muts.value()[0].weight, 2.5f);
  EXPECT_EQ(muts.value()[1].kind, MutationKind::kDeleteEdge);
  EXPECT_EQ(muts.value()[2].kind, MutationKind::kUpdateWeight);
  EXPECT_FLOAT_EQ(muts.value()[2].weight, 0.5f);
  EXPECT_EQ(muts.value()[3].kind, MutationKind::kInsertEdge);
  EXPECT_FLOAT_EQ(muts.value()[3].weight, 1.0f);
  std::remove(path.c_str());
}

TEST(MutationStreamReaderTest, MalformedLinesSurfaceAsErrorsWithContext) {
  const std::string path = ::testing::TempDir() + "/mutations_bad.txt";
  {
    std::ofstream out(path);
    out << "a 0 1\n"
        << "u 1 2\n";  // weight update without a weight
  }
  auto muts = graph::LoadMutationsText(path);
  ASSERT_FALSE(muts.ok());
  // "path:line:" context points at the offending line.
  EXPECT_NE(muts.status().ToString().find(path + ":2:"), std::string::npos)
      << muts.status().ToString();
  std::remove(path.c_str());

  graph::MutationStreamReader reader;
  std::vector<Mutation> out;
  const auto not_open = reader.ReadBatch(16, &out);
  ASSERT_FALSE(not_open.ok());
  EXPECT_EQ(not_open.status().code(), StatusCode::kInvalidArgument);
}

TEST(FingerprintTest, TouchedStripesLocalizeStructuralChange) {
  MutableGraph mg(RmatGraph());
  const CsdbMatrix before = CsdbMatrix::FromGraph(mg.graph());
  const sparse::RowBlockFingerprint fp0 = sparse::FingerprintOf(before, 64);
  EXPECT_TRUE(sparse::TouchedStripes(fp0, sparse::FingerprintOf(before, 64))
                  .empty());

  for (const Mutation& m : graph::SyntheticMutations(mg.graph(), 4, 77)) {
    mg.Log(0, m);
  }
  mg.Synchronize();
  const CsdbMatrix after = CsdbMatrix::FromGraph(mg.graph());
  const sparse::RowBlockFingerprint fp1 = sparse::FingerprintOf(after, 64);
  const std::vector<uint32_t> touched = sparse::TouchedStripes(fp0, fp1);
  EXPECT_FALSE(touched.empty());
  EXPECT_LT(touched.size(), fp1.stripes.size());  // localized, not wholesale
  EXPECT_NE(fp0.combined, fp1.combined);

  // Weight-only change: structure stripes agree, value stripes differ.
  CsdbMatrix scaled = CsdbMatrix::FromGraph(mg.graph());
  sparse::ScaleValues(&scaled, 2.0f);
  const sparse::RowBlockFingerprint fp2 = sparse::FingerprintOf(scaled, 64);
  EXPECT_TRUE(sparse::TouchedStripes(fp1, fp2).empty());
  EXPECT_NE(fp1.value_stripes, fp2.value_stripes);
}

TEST(PlanCacheTest, DeltaInvalidationRebindsWeightOnlyDropsStructural) {
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(4);
  const exec::Context ctx(ms.get(), &pool, 4);

  MutableGraph mg(RmatGraph());
  CsdbMatrix m1 = CsdbMatrix::FromGraph(mg.graph());
  numa::NadpOptions options;
  options.num_threads = 4;

  numa::NadpPlanCache cache;
  cache.Get(m1, options, ctx);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Get(m1, options, ctx);
  EXPECT_EQ(cache.hits(), 1u);

  // Weight-only delta: same structure, new values (and new storage): the
  // slot is rebound, not dropped, so the next Get hits.
  CsdbMatrix m2 = m1;
  sparse::ScaleValues(&m2, 0.5f);
  EXPECT_EQ(cache.InvalidateDelta(m1, m2), 1u);
  cache.Get(m2, options, ctx);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.invalidations(), 0u);

  // Structural delta: the covered slot is invalidated; the next Get misses.
  for (const Mutation& m : graph::SyntheticMutations(mg.graph(), 8, 42)) {
    mg.Log(0, m);
  }
  mg.Synchronize();
  CsdbMatrix m3 = CsdbMatrix::FromGraph(mg.graph());
  EXPECT_EQ(cache.InvalidateDelta(m2, m3), 1u);
  EXPECT_EQ(cache.invalidations(), 1u);
  cache.Get(m3, options, ctx);
  EXPECT_EQ(cache.misses(), 2u);
}

class IncrementalRefreshTest : public ::testing::Test {
 protected:
  engine::EngineOptions Options(int threads) {
    engine::EngineOptions opts;
    opts.system = engine::SystemKind::kOmega;
    opts.num_threads = threads;
    opts.prone.dim = 8;
    opts.prone.oversample = 4;
    opts.prone.chebyshev_order = 3;
    return opts;
  }

  /// Trains on `base`, logs `muts` and refreshes; returns the embedding.
  linalg::DenseMatrix RunDynamic(const Graph& base,
                                 const std::vector<Mutation>& muts, int threads,
                                 bool refresh_all, engine::RefreshReport* report) {
    auto ms = memsim::MemorySystem::CreateDefault();
    ThreadPool pool(threads);
    const exec::Context ctx(ms.get(), &pool, threads);
    engine::DynamicEmbedder dyn(base, Options(threads), "test", threads);
    EXPECT_TRUE(dyn.Train(ctx).ok());
    for (size_t i = 0; i < muts.size(); ++i) {
      dyn.Log(static_cast<int>(i), muts[i]);
    }
    auto res = dyn.Refresh(ctx, refresh_all);
    EXPECT_TRUE(res.ok()) << res.status().ToString();
    if (report != nullptr) *report = res.value();
    return dyn.embedding();
  }
};

TEST_F(IncrementalRefreshTest, SelectiveMatchesFullRecomputeAcrossThreads) {
  const Graph base = RmatGraph();
  const std::vector<Mutation> muts = graph::SyntheticMutations(base, 16, 9);

  engine::RefreshReport selective_report;
  const linalg::DenseMatrix reference =
      RunDynamic(base, muts, 1, /*refresh_all=*/true, nullptr);
  for (const int threads : {1, 2, 8}) {
    engine::RefreshReport r;
    const linalg::DenseMatrix selective =
        RunDynamic(base, muts, threads, /*refresh_all=*/false, &r);
    ASSERT_EQ(selective.bytes(), reference.bytes());
    EXPECT_EQ(0, std::memcmp(selective.data(), reference.data(),
                             reference.bytes()))
        << "selective refresh diverged at " << threads << " threads";
    EXPECT_EQ(r.mutations_applied, muts.size());
    EXPECT_GT(r.affected_rows, r.touched_nodes);
    EXPECT_LT(r.affected_rows, base.num_nodes());  // genuinely selective
    EXPECT_GT(r.total_seconds, 0.0);
    selective_report = r;
  }
  // The refreshed set is the (K-1)-hop ball of the touched nodes.
  EXPECT_EQ(selective_report.refreshed_nodes.size(),
            selective_report.affected_rows);
}

TEST_F(IncrementalRefreshTest, NoPendingMutationsIsANoOp) {
  const Graph base = RmatGraph(8, 1500);
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(2);
  const exec::Context ctx(ms.get(), &pool, 2);
  engine::DynamicEmbedder dyn(base, Options(2), "test", 2);
  ASSERT_TRUE(dyn.Train(ctx).ok());
  const linalg::DenseMatrix before = dyn.embedding();

  auto res = dyn.Refresh(ctx);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().no_op);
  EXPECT_EQ(res.value().affected_rows, 0u);
  EXPECT_EQ(0, std::memcmp(before.data(), dyn.embedding().data(),
                           before.bytes()));
}

TEST(ServeRefreshTest, RefreshRowsSwapsEmbeddingAndReconcilesCache) {
  auto ms = memsim::MemorySystem::CreateDefault();
  linalg::DenseMatrix embedding = linalg::GaussianMatrix(64, 8, 3);
  serve::ServerOptions options;
  options.worker_threads = 2;
  // 8 vectors of 32 B split evenly: 4 hot-pinned keys, 4 LRU frames.
  options.cache.capacity_bytes = 8 * 8 * sizeof(float);
  options.cache.hot_fraction = 0.5;
  const exec::Context ctx(ms.get(), nullptr, 2);
  serve::EmbeddingServer server(embedding, options, ctx);

  std::vector<prefetch::ScoredKey> popularity;
  for (uint32_t k = 0; k < 8; ++k) {
    popularity.push_back({k, 100.0 - k});  // keys 0..3 become the hot set
  }
  server.WarmHotSet(std::move(popularity));
  ASSERT_TRUE(server.Start().ok());

  // Pull key 10 through the LRU so the refresh has a resident key to evict.
  auto warm = server.Submit({serve::QueryKind::kLookup, 10, 0});
  ASSERT_TRUE(warm.ok());
  warm.value().get();

  const std::vector<uint32_t> refreshed = {0, 10, 50};
  server.RefreshRows(refreshed, [&] {
    for (const uint32_t key : refreshed) {
      for (size_t c = 0; c < embedding.cols(); ++c) {
        embedding.At(key, c) = static_cast<float>(key + c);
      }
    }
  });

  // Queries admitted after the refresh observe the swapped rows.
  auto after = server.Submit({serve::QueryKind::kLookup, 10, 0});
  ASSERT_TRUE(after.ok());
  const serve::QueryResult result = after.value().get();
  for (size_t c = 0; c < embedding.cols(); ++c) {
    EXPECT_FLOAT_EQ(result.embedding[c], static_cast<float>(10 + c));
  }
  server.Stop();

  const serve::EmbeddingServer::Stats stats = server.GetStats();
  EXPECT_EQ(stats.refreshes, 1u);
  EXPECT_EQ(stats.cache.refreshed_hot, 1u);        // key 0 re-staged in place
  EXPECT_EQ(stats.cache.refresh_invalidated, 1u);  // key 10 dropped from LRU
  EXPECT_GT(stats.sim_seconds, 0.0);
}

}  // namespace
}  // namespace omega
