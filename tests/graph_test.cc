// Unit tests for the graph substrate: construction, relabeling, R-MAT, the
// dataset registry, text/binary I/O, and degree statistics.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/datasets.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/rmat.h"
#include "graph/stats.h"

namespace omega::graph {
namespace {

// The example graph of the paper's Fig. 5: |V|=7, |E|=11, degrees 4,4,4,3,3,2,2.
std::vector<Edge> PaperExampleEdges() {
  return {
      {0, 1, 1.0f}, {0, 2, 1.0f}, {0, 3, 1.0f}, {0, 4, 1.0f},
      {1, 3, 1.0f}, {1, 4, 1.0f}, {1, 6, 1.0f},
      {2, 4, 1.0f}, {2, 5, 1.0f}, {2, 6, 1.0f},
      {3, 5, 1.0f},
  };
}

Graph MakePaperGraph() {
  auto g = Graph::FromEdges(7, PaperExampleEdges(), /*undirected=*/true);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

TEST(GraphTest, FromEdgesBuildsSymmetricAdjacency) {
  const Graph g = MakePaperGraph();
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_arcs(), 22u);  // 11 undirected edges
  EXPECT_EQ(g.degree(0), 4u);
  EXPECT_EQ(g.degree(1), 4u);
  EXPECT_EQ(g.degree(2), 4u);
  EXPECT_EQ(g.degree(3), 3u);
  EXPECT_EQ(g.degree(4), 3u);
  EXPECT_EQ(g.degree(5), 2u);
  EXPECT_EQ(g.degree(6), 2u);
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(GraphTest, NeighborsAreSorted) {
  const Graph g = MakePaperGraph();
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const NodeId* nbrs = g.neighbors(v);
    for (uint32_t i = 1; i < g.degree(v); ++i) EXPECT_LT(nbrs[i - 1], nbrs[i]);
  }
}

TEST(GraphTest, SelfLoopsDropped) {
  auto g = Graph::FromEdges(3, {{0, 0, 1.0f}, {0, 1, 1.0f}}, true);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_arcs(), 2u);
}

TEST(GraphTest, DuplicateEdgesMergeWeights) {
  auto g = Graph::FromEdges(2, {{0, 1, 1.0f}, {0, 1, 2.5f}}, true);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_arcs(), 2u);
  EXPECT_FLOAT_EQ(g.value().weights(0)[0], 3.5f);
}

TEST(GraphTest, RejectsOutOfRangeEndpoints) {
  auto g = Graph::FromEdges(2, {{0, 5, 1.0f}}, true);
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsOutOfRange());
}

TEST(GraphTest, RejectsEmptyGraph) {
  auto g = Graph::FromEdges(0, {}, true);
  EXPECT_FALSE(g.ok());
}

TEST(GraphTest, DistinctDegreesMatchesPaperExample) {
  const Graph g = MakePaperGraph();
  EXPECT_EQ(g.num_distinct_degrees(), 3u);  // degrees {4, 3, 2}
}

TEST(GraphTest, DegreeDescendingOrderIsSortedAndStable) {
  const Graph g = MakePaperGraph();
  const auto order = g.DegreeDescendingOrder();
  ASSERT_EQ(order.size(), 7u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(g.degree(order[i - 1]), g.degree(order[i]));
  }
  // Stability: equal-degree nodes keep original relative order.
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
}

TEST(GraphTest, RelabelPreservesStructure) {
  const Graph g = MakePaperGraph();
  const auto order = g.DegreeDescendingOrder();
  auto relabeled = g.Relabel(order);
  ASSERT_TRUE(relabeled.ok());
  const Graph& r = relabeled.value();
  EXPECT_EQ(r.num_arcs(), g.num_arcs());
  // New node i is old node order[i] and keeps its degree.
  for (NodeId i = 0; i < r.num_nodes(); ++i) {
    EXPECT_EQ(r.degree(i), g.degree(order[i]));
  }
}

TEST(GraphTest, RelabelRejectsNonPermutation) {
  const Graph g = MakePaperGraph();
  EXPECT_FALSE(g.Relabel({0, 0, 1, 2, 3, 4, 5}).ok());
  EXPECT_FALSE(g.Relabel({0, 1}).ok());
}

TEST(RmatTest, GeneratesRequestedScale) {
  RmatParams params;
  params.scale = 10;
  params.num_edges = 8000;
  auto g = GenerateRmat(params);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 1024u);
  EXPECT_GT(g.value().num_arcs(), 8000u);       // most edges kept, doubled
  EXPECT_LE(g.value().num_arcs(), 16000u);      // bounded by 2x requested
}

TEST(RmatTest, DeterministicForSeed) {
  RmatParams params;
  params.scale = 9;
  params.num_edges = 4000;
  auto g1 = GenerateRmat(params);
  auto g2 = GenerateRmat(params);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g1.value().num_arcs(), g2.value().num_arcs());
  EXPECT_EQ(g1.value().neighbor_array(), g2.value().neighbor_array());
}

TEST(RmatTest, SkewedParametersProduceSkew) {
  RmatParams skewed;
  skewed.scale = 11;
  skewed.num_edges = 30000;
  skewed.a = 0.7;
  skewed.b = 0.15;
  skewed.c = 0.1;
  skewed.d = 0.05;
  RmatParams uniform = skewed;
  uniform.a = uniform.b = uniform.c = uniform.d = 0.25;
  auto gs = GenerateRmat(skewed);
  auto gu = GenerateRmat(uniform);
  ASSERT_TRUE(gs.ok());
  ASSERT_TRUE(gu.ok());
  EXPECT_GT(gs.value().max_degree(), 2 * gu.value().max_degree());
  EXPECT_LT(ComputeDegreeStats(gs.value()).normalized_entropy,
            ComputeDegreeStats(gu.value()).normalized_entropy);
}

TEST(RmatTest, RejectsBadProbabilities) {
  RmatParams params;
  params.a = 0.9;  // sums to > 1
  EXPECT_FALSE(GenerateRmat(params).ok());
}

TEST(DatasetsTest, RegistryHasAllSixPaperDatasets) {
  const auto& all = AllDatasets();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "PK");
  EXPECT_EQ(all[5].name, "FR");
  EXPECT_EQ(all[4].paper_edges, 2410000000ULL);  // Table I: TW-2010, 2.41 B
}

TEST(DatasetsTest, FindByShortAndFullName) {
  EXPECT_TRUE(FindDataset("LJ").ok());
  EXPECT_TRUE(FindDataset("soc-LiveJournal").ok());
  EXPECT_FALSE(FindDataset("nope").ok());
}

TEST(DatasetsTest, AnaloguesScaleRoughlyOneThousandth) {
  for (const auto& spec : AllDatasets()) {
    auto g = LoadDataset(spec);
    ASSERT_TRUE(g.ok()) << spec.name;
    const double node_ratio =
        static_cast<double>(spec.paper_nodes) / g.value().num_nodes();
    EXPECT_GT(node_ratio, 200.0) << spec.name;
    EXPECT_LT(node_ratio, 5000.0) << spec.name;
    // Undirected arc count within 2x of the scaled edge budget.
    EXPECT_GT(g.value().num_arcs(), spec.rmat.num_edges / 2) << spec.name;
  }
}

TEST(DatasetsTest, LoadByName) {
  auto g = LoadDatasetByName("PK");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 2048u);
}

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "omega_graph_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(GraphIoTest, TextRoundTrip) {
  const Graph g = MakePaperGraph();
  ASSERT_TRUE(SaveEdgeListText(g, Path("g.txt")).ok());
  auto loaded = LoadEdgeListText(Path("g.txt"), /*undirected=*/false);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.value().num_arcs(), g.num_arcs());
}

TEST_F(GraphIoTest, TextParserHandlesCommentsAndWeights) {
  {
    std::FILE* f = std::fopen(Path("w.txt").c_str(), "w");
    std::fputs("# comment\n% also comment\n10 20 2.5\n20 30\n", f);
    std::fclose(f);
  }
  auto g = LoadEdgeListText(Path("w.txt"));
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 3u);  // densified ids
  EXPECT_EQ(g.value().num_arcs(), 4u);
  EXPECT_FLOAT_EQ(g.value().weights(0)[0], 2.5f);
}

TEST_F(GraphIoTest, TextParserRejectsGarbage) {
  {
    std::FILE* f = std::fopen(Path("bad.txt").c_str(), "w");
    std::fputs("hello world again\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadEdgeListText(Path("bad.txt")).ok());
  EXPECT_FALSE(LoadEdgeListText(Path("missing.txt")).ok());
}

TEST_F(GraphIoTest, BinaryRoundTrip) {
  RmatParams params;
  params.scale = 9;
  params.num_edges = 3000;
  const Graph g = GenerateRmat(params).value();
  ASSERT_TRUE(SaveBinary(g, Path("g.bin")).ok());
  auto loaded = LoadBinary(Path("g.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.value().num_arcs(), g.num_arcs());
  EXPECT_EQ(loaded.value().neighbor_array(), g.neighbor_array());
}

TEST_F(GraphIoTest, BinaryRejectsWrongMagic) {
  {
    std::FILE* f = std::fopen(Path("junk.bin").c_str(), "wb");
    const char junk[64] = {1, 2, 3};
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadBinary(Path("junk.bin")).ok());
}

TEST(StatsTest, DegreeStatsOnPaperExample) {
  const Graph g = MakePaperGraph();
  const DegreeStats s = ComputeDegreeStats(g);
  EXPECT_EQ(s.num_nodes, 7u);
  EXPECT_EQ(s.num_arcs, 22u);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_EQ(s.distinct_degrees, 3u);
  EXPECT_NEAR(s.mean_degree, 22.0 / 7.0, 1e-9);
  EXPECT_GT(s.degree_entropy, 0.0);
  EXPECT_LE(s.normalized_entropy, 1.0);
}

TEST(StatsTest, RegularGraphHasMaximalEntropy) {
  // A cycle: every node degree 2 -> entropy = log |V|.
  std::vector<Edge> edges;
  const NodeId n = 64;
  for (NodeId v = 0; v < n; ++v) edges.push_back({v, (v + 1u) % n, 1.0f});
  const Graph g = Graph::FromEdges(n, edges, true).value();
  const DegreeStats s = ComputeDegreeStats(g);
  EXPECT_NEAR(s.normalized_entropy, 1.0, 1e-9);
}

TEST(StatsTest, DegreeHistogramSumsToNodeCount) {
  const Graph g = MakePaperGraph();
  const auto hist = DegreeHistogram(g);
  uint64_t total = 0;
  for (uint64_t c : hist) total += c;
  EXPECT_EQ(total, g.num_nodes());
  EXPECT_EQ(hist[4], 3u);
  EXPECT_EQ(hist[3], 2u);
  EXPECT_EQ(hist[2], 2u);
}

}  // namespace
}  // namespace omega::graph
