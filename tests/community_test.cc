// Tests for the SBM community generator, node-classification evaluation, and
// MatrixMarket I/O — the downstream-task substrate of the paper's §I
// applications (classification, clustering, recommendation).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "embed/classification.h"
#include "embed/prone.h"
#include "embed/quality.h"
#include "graph/community.h"
#include "graph/graph_io.h"
#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "sparse/csdb_ops.h"

namespace omega {
namespace {

TEST(SbmTest, GeneratesBlockStructure) {
  graph::SbmParams params;
  params.nodes_per_block = 50;
  params.blocks = 4;
  params.p_in = 0.25;
  params.p_out = 0.01;
  auto sbm = graph::GenerateSbm(params);
  ASSERT_TRUE(sbm.ok());
  const auto& g = sbm.value().graph;
  EXPECT_EQ(g.num_nodes(), 200u);
  ASSERT_EQ(sbm.value().labels.size(), 200u);
  EXPECT_EQ(sbm.value().labels[0], 0u);
  EXPECT_EQ(sbm.value().labels[199], 3u);

  // Intra-block edges dominate.
  uint64_t intra = 0;
  uint64_t inter = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const graph::NodeId* nbrs = g.neighbors(v);
    for (uint32_t i = 0; i < g.degree(v); ++i) {
      (sbm.value().labels[v] == sbm.value().labels[nbrs[i]] ? intra : inter)++;
    }
  }
  EXPECT_GT(intra, 4 * inter);
}

TEST(SbmTest, DeterministicAndValidated) {
  graph::SbmParams params;
  auto a = graph::GenerateSbm(params);
  auto b = graph::GenerateSbm(params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().graph.num_arcs(), b.value().graph.num_arcs());
  params.p_in = 1.5;
  EXPECT_FALSE(graph::GenerateSbm(params).ok());
  params.p_in = 0.2;
  params.blocks = 0;
  EXPECT_FALSE(graph::GenerateSbm(params).ok());
}

TEST(ClassificationTest, PerfectEmbeddingGetsPerfectScore) {
  // One-hot class embeddings classify perfectly.
  std::vector<uint32_t> labels;
  linalg::DenseMatrix vectors(120, 3);
  for (size_t r = 0; r < 120; ++r) {
    const uint32_t label = static_cast<uint32_t>(r % 3);
    labels.push_back(label);
    vectors.At(r, label) = 1.0f;
  }
  auto result = embed::EvaluateClassification(vectors, labels);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().micro_f1, 1.0);
  EXPECT_EQ(result.value().num_classes, 3u);
  EXPECT_EQ(result.value().train_size + result.value().test_size, 120u);
}

TEST(ClassificationTest, RandomEmbeddingNearChance) {
  std::vector<uint32_t> labels;
  for (size_t r = 0; r < 400; ++r) labels.push_back(static_cast<uint32_t>(r % 4));
  const linalg::DenseMatrix vectors = linalg::GaussianMatrix(400, 8, 3);
  auto result = embed::EvaluateClassification(vectors, labels);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().micro_f1, 0.25, 0.12);
}

TEST(ClassificationTest, ValidatesInput) {
  const linalg::DenseMatrix vectors = linalg::GaussianMatrix(10, 2, 1);
  std::vector<uint32_t> labels(9, 0);
  EXPECT_FALSE(embed::EvaluateClassification(vectors, labels).ok());
  labels.resize(10, 0);
  embed::ClassificationOptions opts;
  opts.train_fraction = 1.5;
  EXPECT_FALSE(embed::EvaluateClassification(vectors, labels, opts).ok());
}

TEST(ClassificationTest, ProneEmbeddingClassifiesSbmCommunities) {
  // The paper's classification story end-to-end: embed a planted-partition
  // graph with ProNE and recover the communities far above chance.
  graph::SbmParams params;
  params.nodes_per_block = 40;
  params.blocks = 4;
  params.p_in = 0.3;
  params.p_out = 0.02;
  auto sbm = graph::GenerateSbm(params);
  ASSERT_TRUE(sbm.ok());
  const graph::CsdbMatrix adjacency =
      graph::CsdbMatrix::FromGraph(sbm.value().graph);
  embed::ProneOptions prone;
  prone.dim = 16;
  prone.oversample = 8;
  auto emb = embed::ProneEmbed(
      adjacency, prone,
      [](const graph::CsdbMatrix& m, const linalg::DenseMatrix& in,
         linalg::DenseMatrix* out) -> Result<double> {
        OMEGA_RETURN_NOT_OK(sparse::ReferenceSpmm(m, in, out));
        return 0.0;
      });
  ASSERT_TRUE(emb.ok());
  auto result = embed::EvaluateClassification(emb.value().ToOriginalOrder(),
                                              sbm.value().labels);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().micro_f1, 0.7);  // chance = 0.25
}

class MatrixMarketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "omega_mm_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(MatrixMarketTest, RoundTrip) {
  graph::RmatParams params;
  params.scale = 8;
  params.num_edges = 1500;
  const graph::Graph g = graph::GenerateRmat(params).value();
  ASSERT_TRUE(graph::SaveMatrixMarket(g, Path("g.mtx")).ok());
  auto loaded = graph::LoadMatrixMarket(Path("g.mtx"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.value().num_arcs(), g.num_arcs());
  EXPECT_EQ(loaded.value().neighbor_array(), g.neighbor_array());
}

TEST_F(MatrixMarketTest, ParsesPatternAndGeneral) {
  {
    std::ofstream out(Path("p.mtx"));
    out << "%%MatrixMarket matrix coordinate pattern symmetric\n"
        << "% a comment\n"
        << "3 3 2\n"
        << "2 1\n"
        << "3 2\n";
  }
  auto g = graph::LoadMatrixMarket(Path("p.mtx"));
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g.value().num_nodes(), 3u);
  EXPECT_EQ(g.value().num_arcs(), 4u);
  EXPECT_FLOAT_EQ(g.value().weights(0)[0], 1.0f);
}

TEST_F(MatrixMarketTest, RejectsMalformedFiles) {
  auto write = [&](const std::string& name, const std::string& content) {
    std::ofstream out(Path(name));
    out << content;
    return Path(name);
  };
  EXPECT_FALSE(graph::LoadMatrixMarket(Path("missing.mtx")).ok());
  EXPECT_FALSE(
      graph::LoadMatrixMarket(write("nobanner.mtx", "1 1 0\n")).ok());
  EXPECT_FALSE(graph::LoadMatrixMarket(
                   write("rect.mtx",
                         "%%MatrixMarket matrix coordinate real general\n"
                         "2 3 1\n1 1 1.0\n"))
                   .ok());
  EXPECT_FALSE(graph::LoadMatrixMarket(
                   write("oob.mtx",
                         "%%MatrixMarket matrix coordinate real general\n"
                         "2 2 1\n5 1 1.0\n"))
                   .ok());
  EXPECT_FALSE(graph::LoadMatrixMarket(
                   write("short.mtx",
                         "%%MatrixMarket matrix coordinate real general\n"
                         "2 2 3\n1 2 1.0\n"))
                   .ok());
  EXPECT_FALSE(graph::LoadMatrixMarket(
                   write("dense.mtx", "%%MatrixMarket matrix array real general\n"
                                      "2 2\n1\n2\n3\n4\n"))
                   .ok());
}

}  // namespace
}  // namespace omega
