// Property-based tests: invariants swept over graph shapes, thread counts,
// and dimensions with TEST_P / INSTANTIATE_TEST_SUITE_P.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"
#include "prefetch/wofp.h"
#include "sched/allocators.h"
#include "sched/entropy.h"
#include "sparse/csdb_ops.h"
#include "sparse/spmm.h"

namespace omega {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: CSDB structural invariants over graph shape (scale, edges, skew).
// ---------------------------------------------------------------------------

using GraphShape = std::tuple<uint32_t /*scale*/, uint64_t /*edges*/, double /*a*/>;

class CsdbInvariants : public ::testing::TestWithParam<GraphShape> {
 protected:
  graph::Graph MakeGraph() const {
    auto [scale, edges, a] = GetParam();
    graph::RmatParams params;
    params.scale = scale;
    params.num_edges = edges;
    params.a = a;
    const double rest = (1.0 - a) / 3.0;
    params.b = rest;
    params.c = rest;
    params.d = 1.0 - a - 2 * rest;
    return graph::GenerateRmat(params).value();
  }
};

TEST_P(CsdbInvariants, BlockMetadataIsConsistent) {
  const graph::Graph g = MakeGraph();
  const graph::CsdbMatrix m = graph::CsdbMatrix::FromGraph(g);
  // Invariant 1: degrees non-increasing across rows.
  for (uint32_t r = 1; r < m.num_rows(); ++r) {
    ASSERT_LE(m.RowDegree(r), m.RowDegree(r - 1));
  }
  // Invariant 2: deg_list strictly decreasing, deg_ind strictly increasing.
  for (uint32_t b = 1; b < m.num_blocks(); ++b) {
    ASSERT_LT(m.deg_list()[b], m.deg_list()[b - 1]);
    ASSERT_LT(m.deg_ind()[b], m.deg_ind()[b + 1]);
  }
  // Invariant 3: Eq. 1 row pointers tile the nnz array exactly.
  uint64_t ptr = 0;
  for (uint32_t r = 0; r < m.num_rows(); ++r) {
    ASSERT_EQ(m.RowPtr(r), ptr);
    ptr += m.RowDegree(r);
  }
  ASSERT_EQ(ptr, m.nnz());
  // Invariant 4: block count equals distinct degrees.
  ASSERT_EQ(m.num_blocks(), g.num_distinct_degrees());
  // Invariant 5: index bytes are degree-bounded, not node-bounded.
  ASSERT_LE(m.IndexBytes(), (m.num_blocks() + 1) * 16 + 16);
}

TEST_P(CsdbInvariants, SpmmMatchesReferenceUnderAllAllocators) {
  const graph::Graph g = MakeGraph();
  const graph::CsdbMatrix m = graph::CsdbMatrix::FromGraph(g);
  const linalg::DenseMatrix b = linalg::GaussianMatrix(m.num_cols(), 4, 11);
  linalg::DenseMatrix expected;
  ASSERT_TRUE(sparse::ReferenceSpmm(m, b, &expected).ok());
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(6);
  for (auto kind :
       {sched::AllocatorKind::kRoundRobin, sched::AllocatorKind::kWorkloadBalanced,
        sched::AllocatorKind::kEntropyAware}) {
    sched::AllocatorOptions opts;
    opts.num_threads = 6;
    const auto workloads = sched::Allocate(m, kind, opts);
    linalg::DenseMatrix c(m.num_rows(), 4);
    sparse::ParallelSpmm(m, b, &c, workloads, sparse::SpmmPlacements{}, exec::Context(ms.get(), &pool));
    ASSERT_LT(linalg::DenseMatrix::MaxAbsDiff(c, expected), 1e-4)
        << sched::AllocatorName(kind);
  }
}

TEST_P(CsdbInvariants, TransposeIsInvolutionOnValues) {
  const graph::Graph g = MakeGraph();
  const graph::CsdbMatrix m = graph::CsdbMatrix::FromGraph(g);
  auto t = sparse::Transpose(m);
  ASSERT_TRUE(t.ok());
  auto tt = sparse::Transpose(t.value());
  ASSERT_TRUE(tt.ok());
  ASSERT_EQ(tt.value().nnz(), m.nnz());
  // Frobenius mass preserved through double transpose.
  double mass_m = 0.0;
  double mass_tt = 0.0;
  for (float v : m.nnz_list()) mass_m += static_cast<double>(v) * v;
  for (float v : tt.value().nnz_list()) mass_tt += static_cast<double>(v) * v;
  ASSERT_NEAR(mass_m, mass_tt, 1e-3 * (1.0 + mass_m));
}

INSTANTIATE_TEST_SUITE_P(
    GraphShapes, CsdbInvariants,
    ::testing::Values(GraphShape{6, 100, 0.25}, GraphShape{8, 1500, 0.45},
                      GraphShape{10, 8000, 0.57}, GraphShape{11, 20000, 0.65},
                      GraphShape{12, 60000, 0.57}),
    [](const auto& info) {
      return "scale" + std::to_string(std::get<0>(info.param)) + "_a" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 100));
    });

// ---------------------------------------------------------------------------
// Sweep 2: allocator invariants over thread counts.
// ---------------------------------------------------------------------------

class AllocatorThreadSweep
    : public ::testing::TestWithParam<std::tuple<sched::AllocatorKind, int>> {};

TEST_P(AllocatorThreadSweep, CoverageAndBudgetInvariants) {
  auto [kind, threads] = GetParam();
  graph::RmatParams params;
  params.scale = 11;
  params.num_edges = 25000;
  params.a = 0.6;
  params.b = 0.15;
  params.c = 0.15;
  params.d = 0.1;
  const graph::CsdbMatrix a =
      graph::CsdbMatrix::FromGraph(graph::GenerateRmat(params).value());
  sched::AllocatorOptions opts;
  opts.num_threads = threads;
  const auto workloads = sched::Allocate(a, kind, opts);
  ASSERT_EQ(workloads.size(), static_cast<size_t>(threads));
  uint64_t nnz = 0;
  uint32_t rows = 0;
  for (const auto& w : workloads) {
    nnz += w.nnz;
    rows += w.num_rows;
    // Entropy bounded by log |V|.
    ASSERT_LE(w.entropy, std::log(static_cast<double>(a.num_cols())) + 1e-9);
  }
  ASSERT_EQ(nnz, a.nnz());
  ASSERT_EQ(rows, a.num_rows());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllocatorThreadSweep,
    ::testing::Combine(::testing::Values(sched::AllocatorKind::kRoundRobin,
                                         sched::AllocatorKind::kWorkloadBalanced,
                                         sched::AllocatorKind::kEntropyAware),
                       ::testing::Values(1, 2, 3, 8, 17, 36)),
    [](const auto& info) {
      return std::string(sched::AllocatorName(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 3: NaDP correctness over (threads, dims).
// ---------------------------------------------------------------------------

class NadpSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(NadpSweep, MatchesReference) {
  auto [threads, dim] = GetParam();
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 5000;
  const graph::CsdbMatrix a =
      graph::CsdbMatrix::FromGraph(graph::GenerateRmat(params).value());
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), dim, 21);
  linalg::DenseMatrix expected;
  ASSERT_TRUE(sparse::ReferenceSpmm(a, b, &expected).ok());
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(static_cast<size_t>(threads));
  for (bool enabled : {true, false}) {
    numa::NadpOptions opts;
    opts.num_threads = threads;
    opts.enabled = enabled;
    opts.use_wofp = (dim % 2 == 0);  // exercise both cache paths
    linalg::DenseMatrix c(a.num_rows(), dim);
    numa::NadpSpmm(a, b, &c, opts, exec::Context(ms.get(), &pool));
    ASSERT_LT(linalg::DenseMatrix::MaxAbsDiff(c, expected), 1e-4)
        << "threads=" << threads << " dim=" << dim << " nadp=" << enabled;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, NadpSweep,
                         ::testing::Combine(::testing::Values(1, 2, 5, 8),
                                            ::testing::Values(1, 3, 8, 16)),
                         [](const auto& info) {
                           return "t" + std::to_string(std::get<0>(info.param)) +
                                  "_d" + std::to_string(std::get<1>(info.param));
                         });

// ---------------------------------------------------------------------------
// Sweep 4: WoFP invariants over (eta, sigma).
// ---------------------------------------------------------------------------

class WofpParamSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(WofpParamSweep, CapacityAndHitRateInvariants) {
  auto [eta, sigma] = GetParam();
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 10000;
  params.a = 0.62;
  params.b = 0.16;
  params.c = 0.16;
  params.d = 0.06;
  const graph::CsdbMatrix a =
      graph::CsdbMatrix::FromGraph(graph::GenerateRmat(params).value());
  auto ms = memsim::MemorySystem::CreateDefault();
  sched::Workload w;
  w.ranges.push_back(sched::RowRange{0, a.num_rows()});
  sched::RefreshCounts(a, &w);
  prefetch::WofpOptions opts;
  opts.eta = eta;
  opts.sigma = sigma;
  memsim::SimClock clock;
  memsim::WorkerCtx ctx{0, 0, 1, &clock};
  const auto in_degrees = prefetch::ComputeInDegrees(a);
  auto p = prefetch::WofpPrefetcher::Build(a, w, in_degrees, opts, ms.get(), &ctx);
  ASSERT_NE(p, nullptr);
  // Capacity bound: M <= W_i * sigma.
  ASSERT_LE(p->store().size(),
            static_cast<size_t>(static_cast<double>(w.nnz) * sigma) + 1);
  // Every cached key is a real column of the workload.
  for (const auto& e : p->store().entries()) {
    ASSERT_LT(e.key, a.num_cols());
    ASSERT_GT(in_degrees[e.key], 0u);
  }
  // Hit counting is consistent with Contains.
  uint64_t hits = 0;
  for (graph::NodeId c : a.col_list()) hits += p->Contains(c);
  if (p->store().size() > 0) ASSERT_GT(hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WofpParamSweep,
    ::testing::Combine(::testing::Values(0.0, 1e-3, 5e-2, 1.0),
                       ::testing::Values(0.01, 0.1, 0.3)),
    [](const auto& info) {
      return "eta" + std::to_string(static_cast<int>(std::get<0>(info.param) * 1000)) +
             "_sigma" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

// ---------------------------------------------------------------------------
// Sweep 5: entropy formula equivalence H = log(S1) - S2/S1 vs direct Eq. 3.
// ---------------------------------------------------------------------------

class EntropySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EntropySweep, IncrementalMatchesDirect) {
  Rng rng(GetParam());
  sched::EntropyAccumulator acc;
  std::vector<uint32_t> degrees;
  for (int i = 0; i < 200; ++i) {
    const uint32_t d = static_cast<uint32_t>(rng.NextBounded(50));
    degrees.push_back(d);
    acc.AddRow(d);
  }
  uint64_t w = 0;
  for (uint32_t d : degrees) w += d;
  double direct = 0.0;
  for (uint32_t d : degrees) {
    if (d == 0) continue;
    const double p = static_cast<double>(d) / static_cast<double>(w);
    direct += -p * std::log(p);
  }
  ASSERT_NEAR(acc.Entropy(), direct, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EntropySweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace omega
