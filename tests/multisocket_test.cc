// Multi-socket generality tests: the paper evaluates on two sockets, but
// NaDP's partitioning (Fig. 10) is defined for arbitrary socket counts.
// These tests run the full stack on 1-, 2-, and 4-socket simulated machines.

#include <gtest/gtest.h>

#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"
#include "numa/partition.h"
#include "omega/engine.h"
#include "sparse/csdb_ops.h"

namespace omega {
namespace {

memsim::MemorySystem MakeMachine(int sockets) {
  memsim::TopologyConfig topo;
  topo.num_sockets = sockets;
  // Keep total capacity constant across socket counts.
  topo.dram_bytes_per_socket = (48ULL << 20) / sockets;
  topo.pm_bytes_per_socket = (384ULL << 20) / sockets;
  return memsim::MemorySystem(topo, memsim::DefaultProfiles());
}

graph::CsdbMatrix TestMatrix() {
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 12000;
  return graph::CsdbMatrix::FromGraph(graph::GenerateRmat(params).value());
}

class SocketSweep : public ::testing::TestWithParam<int> {};

TEST_P(SocketSweep, PartitionCoversRowsAndColumns) {
  const int sockets = GetParam();
  const graph::CsdbMatrix a = TestMatrix();
  const numa::SocketPartition part = numa::MakeSocketPartition(a, 32, sockets);
  ASSERT_EQ(part.num_sockets(), sockets);
  uint32_t row = 0;
  size_t col = 0;
  for (int s = 0; s < sockets; ++s) {
    EXPECT_EQ(part.row_blocks[s].begin, row);
    row = part.row_blocks[s].end;
    EXPECT_EQ(part.col_blocks[s].first, col);
    col = part.col_blocks[s].second;
  }
  EXPECT_EQ(row, a.num_rows());
  EXPECT_EQ(col, 32u);
}

TEST_P(SocketSweep, NadpSpmmCorrectOnAnySocketCount) {
  const int sockets = GetParam();
  const graph::CsdbMatrix a = TestMatrix();
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 8, 7);
  linalg::DenseMatrix expected;
  ASSERT_TRUE(sparse::ReferenceSpmm(a, b, &expected).ok());
  memsim::MemorySystem machine = MakeMachine(sockets);
  ThreadPool pool(8);
  for (bool enabled : {true, false}) {
    numa::NadpOptions opts;
    opts.num_threads = 8;
    opts.enabled = enabled;
    linalg::DenseMatrix c(a.num_rows(), 8);
    numa::NadpSpmm(a, b, &c, opts, exec::Context(&machine, &pool));
    ASSERT_LT(linalg::DenseMatrix::MaxAbsDiff(c, expected), 1e-4)
        << sockets << " sockets, nadp=" << enabled;
  }
}

TEST_P(SocketSweep, EndToEndEngineRuns) {
  const int sockets = GetParam();
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 5000;
  const graph::Graph g = graph::GenerateRmat(params).value();
  memsim::MemorySystem machine = MakeMachine(sockets);
  ThreadPool pool(8);
  engine::EngineOptions opts;
  opts.system = engine::SystemKind::kOmega;
  opts.num_threads = 8;
  opts.prone.dim = 8;
  opts.prone.oversample = 4;
  auto report = engine::RunEmbedding(g, "t", opts, exec::Context(&machine, &pool));
  ASSERT_TRUE(report.ok()) << sockets << " sockets: "
                           << report.status().ToString();
  EXPECT_GT(report.value().embed_seconds, 0.0);
  EXPECT_EQ(report.value().embedding.rows(), g.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(Sockets, SocketSweep, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param);
                         });

TEST(MultiSocketTest, InterleavedPenaltyGrowsWithSockets) {
  // With more sockets, the Interleaved policy sends a larger fraction of
  // traffic remote; NaDP's advantage should not shrink.
  const graph::CsdbMatrix a = TestMatrix();
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 8, 3);
  auto gain = [&](int sockets) {
    memsim::MemorySystem machine = MakeMachine(sockets);
    ThreadPool pool(8);
    linalg::DenseMatrix c(a.num_rows(), 8);
    numa::NadpOptions on;
    on.num_threads = 8;
    numa::NadpOptions off = on;
    off.enabled = false;
    const double t_on =
        numa::NadpSpmm(a, b, &c, on, exec::Context(&machine, &pool)).phase_seconds;
    const double t_off =
        numa::NadpSpmm(a, b, &c, off, exec::Context(&machine, &pool)).phase_seconds;
    return t_off / t_on;
  };
  EXPECT_GE(gain(4), 0.9 * gain(2));
  EXPECT_GT(gain(2), 1.2);
}

TEST(MultiSocketTest, SingleSocketNadpIsNoOpInLocality) {
  // One socket: everything is local; NaDP vs Interleaved should be ~equal.
  const graph::CsdbMatrix a = TestMatrix();
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 8, 3);
  memsim::MemorySystem machine = MakeMachine(1);
  ThreadPool pool(8);
  linalg::DenseMatrix c(a.num_rows(), 8);
  numa::NadpOptions on;
  on.num_threads = 8;
  numa::NadpOptions off = on;
  off.enabled = false;
  machine.ResetTraffic();
  numa::NadpSpmm(a, b, &c, off, exec::Context(&machine, &pool));
  EXPECT_DOUBLE_EQ(machine.Traffic().RemoteFraction(), 0.0);
}

}  // namespace
}  // namespace omega
