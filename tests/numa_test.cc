// Unit tests for NaDP (§III-D): socket partitioning, workload clipping, the
// interleaved baseline, numerical correctness, and the Fig. 15 speedup shape.

#include <gtest/gtest.h>

#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"
#include "numa/partition.h"
#include "sparse/csdb_ops.h"

namespace omega::numa {
namespace {

using graph::CsdbMatrix;
using linalg::DenseMatrix;

CsdbMatrix TestMatrix(uint32_t scale = 10, uint64_t edges = 15000) {
  graph::RmatParams params;
  params.scale = scale;
  params.num_edges = edges;
  return CsdbMatrix::FromGraph(graph::GenerateRmat(params).value());
}

TEST(PartitionTest, RowBlocksCoverAndBalanceNnz) {
  const CsdbMatrix a = TestMatrix();
  const SocketPartition part = MakeSocketPartition(a, 8, 2);
  ASSERT_EQ(part.num_sockets(), 2);
  EXPECT_EQ(part.row_blocks[0].begin, 0u);
  EXPECT_EQ(part.row_blocks[0].end, part.row_blocks[1].begin);
  EXPECT_EQ(part.row_blocks[1].end, a.num_rows());
  // nnz balance within 2x.
  uint64_t nnz0 = 0;
  uint64_t nnz1 = 0;
  for (auto cur = a.Rows(0); !cur.AtEnd(); cur.Next()) {
    (cur.row() < part.row_blocks[0].end ? nnz0 : nnz1) += cur.degree();
  }
  EXPECT_LT(std::max(nnz0, nnz1), 2 * std::min(nnz0, nnz1) + 64);
}

TEST(PartitionTest, ColumnBlocksSplitEvenly) {
  const CsdbMatrix a = TestMatrix(8, 1000);
  const SocketPartition part = MakeSocketPartition(a, 7, 2);
  EXPECT_EQ(part.col_blocks[0], (std::pair<size_t, size_t>{0, 4}));
  EXPECT_EQ(part.col_blocks[1], (std::pair<size_t, size_t>{4, 7}));
}

TEST(PartitionTest, SocketOfRow) {
  const CsdbMatrix a = TestMatrix();
  const SocketPartition part = MakeSocketPartition(a, 8, 2);
  EXPECT_EQ(part.SocketOfRow(0), 0);
  EXPECT_EQ(part.SocketOfRow(a.num_rows() - 1), 1);
}

TEST(PartitionTest, IntersectWorkloadClips) {
  sched::Workload w;
  w.ranges.push_back(sched::RowRange{0, 10});
  w.ranges.push_back(sched::RowRange{20, 30});
  const sched::Workload clipped = IntersectWorkload(w, sched::RowRange{5, 25});
  ASSERT_EQ(clipped.ranges.size(), 2u);
  EXPECT_EQ(clipped.ranges[0].begin, 5u);
  EXPECT_EQ(clipped.ranges[0].end, 10u);
  EXPECT_EQ(clipped.ranges[1].begin, 20u);
  EXPECT_EQ(clipped.ranges[1].end, 25u);
  EXPECT_TRUE(IntersectWorkload(w, sched::RowRange{50, 60}).ranges.empty());
}

class NadpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = TestMatrix();
    b_ = linalg::GaussianMatrix(a_.num_cols(), 8, 5);
    ms_ = memsim::MemorySystem::CreateDefault();
    pool_ = std::make_unique<ThreadPool>(8);
    ASSERT_TRUE(sparse::ReferenceSpmm(a_, b_, &expected_).ok());
  }

  NadpOptions BaseOptions() {
    NadpOptions opts;
    opts.num_threads = 8;
    opts.use_wofp = false;
    return opts;
  }

  CsdbMatrix a_;
  DenseMatrix b_;
  DenseMatrix expected_;
  std::unique_ptr<memsim::MemorySystem> ms_;
  std::unique_ptr<ThreadPool> pool_;
};

TEST_F(NadpTest, EnabledComputesCorrectResult) {
  DenseMatrix c(a_.num_rows(), b_.cols());
  const NadpResult r = NadpSpmm(a_, b_, &c, BaseOptions(), exec::Context(ms_.get(), pool_.get()));
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected_), 1e-4);
  EXPECT_GT(r.phase_seconds, 0.0);
  EXPECT_EQ(r.nnz_processed, a_.nnz());
  EXPECT_EQ(r.thread_seconds.size(), 8u);
}

TEST_F(NadpTest, DisabledInterleavedComputesCorrectResult) {
  DenseMatrix c(a_.num_rows(), b_.cols());
  NadpOptions opts = BaseOptions();
  opts.enabled = false;
  const NadpResult r = NadpSpmm(a_, b_, &c, opts, exec::Context(ms_.get(), pool_.get()));
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected_), 1e-4);
  EXPECT_GT(r.phase_seconds, 0.0);
}

TEST_F(NadpTest, NadpBeatsInterleaved) {
  // Fig. 15: NaDP accelerates SpMM by ~2.4-3.6x over the Interleave policy.
  DenseMatrix c(a_.num_rows(), b_.cols());
  NadpOptions on = BaseOptions();
  NadpOptions off = BaseOptions();
  off.enabled = false;
  const double t_on = NadpSpmm(a_, b_, &c, on, exec::Context(ms_.get(), pool_.get())).phase_seconds;
  const double t_off =
      NadpSpmm(a_, b_, &c, off, exec::Context(ms_.get(), pool_.get())).phase_seconds;
  EXPECT_GT(t_off / t_on, 1.3);
}

TEST_F(NadpTest, RemoteTrafficFractionDropsWithNadp) {
  DenseMatrix c(a_.num_rows(), b_.cols());
  NadpOptions off = BaseOptions();
  off.enabled = false;
  ms_->ResetTraffic();
  NadpSpmm(a_, b_, &c, off, exec::Context(ms_.get(), pool_.get()));
  const double remote_off = ms_->Traffic().RemoteFraction();
  ms_->ResetTraffic();
  NadpSpmm(a_, b_, &c, BaseOptions(), exec::Context(ms_.get(), pool_.get()));
  const double remote_on = ms_->Traffic().RemoteFraction();
  // Paper: >43% remote without NaDP; NaDP's local-write discipline cuts it.
  EXPECT_GT(remote_off, 0.4);
  EXPECT_LT(remote_on, remote_off);
}

TEST_F(NadpTest, ColumnRangeRestrictsWork) {
  DenseMatrix c(a_.num_rows(), b_.cols());
  const NadpResult full =
      NadpSpmm(a_, b_, &c, BaseOptions(), exec::Context(ms_.get(), pool_.get()));
  DenseMatrix c2(a_.num_rows(), b_.cols());
  const NadpResult half =
      NadpSpmm(a_, b_, &c2, BaseOptions(), exec::Context(ms_.get(), pool_.get()), 0, 4);
  EXPECT_LT(half.phase_seconds, full.phase_seconds);
  for (size_t t = 0; t < 4; ++t) {
    for (size_t r = 0; r < c2.rows(); ++r) {
      EXPECT_NEAR(c2.At(r, t), expected_.At(r, t), 1e-4);
    }
  }
  for (size_t r = 0; r < c2.rows(); ++r) EXPECT_EQ(c2.At(r, 6), 0.0f);
}

TEST_F(NadpTest, WofpComposesWithNadp) {
  DenseMatrix c(a_.num_rows(), b_.cols());
  NadpOptions with = BaseOptions();
  with.use_wofp = true;
  with.wofp.sigma = 0.15;
  const double t_with =
      NadpSpmm(a_, b_, &c, with, exec::Context(ms_.get(), pool_.get())).phase_seconds;
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected_), 1e-4);
  const double t_without =
      NadpSpmm(a_, b_, &c, BaseOptions(), exec::Context(ms_.get(), pool_.get())).phase_seconds;
  EXPECT_LT(t_with, t_without);
}

TEST_F(NadpTest, AllAllocatorsProduceCorrectResults) {
  for (auto kind :
       {sched::AllocatorKind::kRoundRobin, sched::AllocatorKind::kWorkloadBalanced,
        sched::AllocatorKind::kEntropyAware}) {
    DenseMatrix c(a_.num_rows(), b_.cols());
    NadpOptions opts = BaseOptions();
    opts.allocator = kind;
    NadpSpmm(a_, b_, &c, opts, exec::Context(ms_.get(), pool_.get()));
    EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected_), 1e-4)
        << sched::AllocatorName(kind);
  }
}

TEST_F(NadpTest, OddThreadCountWorks) {
  DenseMatrix c(a_.num_rows(), b_.cols());
  NadpOptions opts = BaseOptions();
  opts.num_threads = 7;
  const NadpResult r = NadpSpmm(a_, b_, &c, opts, exec::Context(ms_.get(), pool_.get()));
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected_), 1e-4);
  EXPECT_EQ(r.thread_seconds.size(), 7u);
}

}  // namespace
}  // namespace omega::numa
