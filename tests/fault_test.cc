// Fault-injection tests: profile parsing, draw determinism and monotonicity,
// and the engine-level recovery contracts — same seed gives byte-identical
// fault reports, a zero-rate plan is bit-identical to no plan, simulated time
// is monotone in a single fault kind's rate, and the accounting identity
// injected == retried + degraded + surfaced holds across every family.

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <tuple>

#include "common/thread_pool.h"
#include "graph/rmat.h"
#include "memsim/fault.h"
#include "memsim/memory_system.h"
#include "omega/distributed_sim.h"
#include "omega/engine.h"
#include "omega/report.h"

namespace omega {
namespace {

using memsim::FaultCounters;
using memsim::FaultKind;
using memsim::FaultPlan;
using memsim::MemOp;
using memsim::Pattern;
using memsim::Tier;

// ---------------------------------------------------------------------------
// Profile parsing.
// ---------------------------------------------------------------------------

TEST(FaultProfileTest, ParsesEveryNamedProfile) {
  for (const std::string& name : memsim::FaultProfileNames()) {
    auto plan = memsim::FaultPlanFromProfile(name);
    ASSERT_TRUE(plan.ok()) << name << ": " << plan.status().ToString();
    EXPECT_EQ(plan.value().enabled, name != "none") << name;
  }
}

TEST(FaultProfileTest, ParsesSeedSuffix) {
  auto plan = memsim::FaultPlanFromProfile("pm-stall:7");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().seed, 7u);
  EXPECT_TRUE(plan.value().enabled);
}

TEST(FaultProfileTest, RejectsUnknownNameAndBadSeed) {
  EXPECT_FALSE(memsim::FaultPlanFromProfile("bogus").ok());
  EXPECT_FALSE(memsim::FaultPlanFromProfile("pm-stall:x7").ok());
  EXPECT_FALSE(memsim::FaultPlanFromProfile("pm-stall:").ok());
}

// ---------------------------------------------------------------------------
// Custom profile files ("@path" specs).
// ---------------------------------------------------------------------------

std::string WriteProfileFile(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(FaultProfileFileTest, ParsesDirectivesAndRates) {
  const std::string path = WriteProfileFile("ok.prof",
                                            "# comment line\n"
                                            "seed 9\n"
                                            "stall-multiplier 3.5\n"
                                            "rate pm read seq stall 0.25\n"
                                            "rate pim * * timeout 0.1\n");
  auto plan = memsim::FaultPlanFromFile(path);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan.value().enabled);
  EXPECT_EQ(plan.value().seed, 9u);
  EXPECT_DOUBLE_EQ(plan.value().stall_multiplier, 3.5);
  EXPECT_DOUBLE_EQ(
      plan.value().at(Tier::kPm, MemOp::kRead, Pattern::kSequential).stall,
      0.25);
  // The pim wildcard covers both ops and both patterns.
  EXPECT_DOUBLE_EQ(
      plan.value().at(Tier::kPim, MemOp::kWrite, Pattern::kRandom).timeout,
      0.1);
  EXPECT_DOUBLE_EQ(
      plan.value().at(Tier::kPim, MemOp::kRead, Pattern::kSequential).timeout,
      0.1);

  // The same file loads through the engine-facing "@path" spec.
  auto via_spec = memsim::FaultPlanFromProfile("@" + path);
  ASSERT_TRUE(via_spec.ok());
  EXPECT_EQ(via_spec.value().seed, 9u);
}

TEST(FaultProfileFileTest, RejectsUnknownTierWithLineNumber) {
  const std::string path = WriteProfileFile(
      "bad_tier.prof", "seed 1\n\nrate hbm read seq stall 0.1\n");
  auto plan = memsim::FaultPlanFromFile(path);
  ASSERT_FALSE(plan.ok());
  const std::string msg = plan.status().ToString();
  EXPECT_NE(msg.find(path + ":3:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown tier 'hbm'"), std::string::npos) << msg;
}

TEST(FaultProfileFileTest, RejectsUnknownOpWithLineNumber) {
  const std::string path =
      WriteProfileFile("bad_op.prof", "rate pm scan seq stall 0.1\n");
  auto plan = memsim::FaultPlanFromFile(path);
  ASSERT_FALSE(plan.ok());
  const std::string msg = plan.status().ToString();
  EXPECT_NE(msg.find(path + ":1:"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown op 'scan'"), std::string::npos) << msg;
}

TEST(FaultProfileFileTest, RejectsBadKindDirectiveAndRange) {
  const std::string bad_kind =
      WriteProfileFile("bad_kind.prof", "rate pm read seq flake 0.1\n");
  EXPECT_FALSE(memsim::FaultPlanFromFile(bad_kind).ok());
  const std::string bad_directive =
      WriteProfileFile("bad_directive.prof", "jitter 0.5\n");
  auto plan = memsim::FaultPlanFromFile(bad_directive);
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().ToString().find("unknown directive 'jitter'"),
            std::string::npos);
  const std::string bad_range =
      WriteProfileFile("bad_range.prof", "rate pm read seq stall 1.5\n");
  EXPECT_FALSE(memsim::FaultPlanFromFile(bad_range).ok());
  EXPECT_FALSE(memsim::FaultPlanFromProfile("@/does/not/exist.prof").ok());
}

// ---------------------------------------------------------------------------
// Draw-level determinism and monotonicity.
// ---------------------------------------------------------------------------

FaultPlan StallOnlyPlan(double rate, uint64_t seed = 42) {
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = seed;
  plan.SetTier(Tier::kPm, {rate, 0.0, 0.0});
  return plan;
}

TEST(FaultDrawTest, SameKeySameKind) {
  memsim::FaultInjector a, b;
  a.SetPlan(StallOnlyPlan(0.3));
  b.SetPlan(StallOnlyPlan(0.3));
  for (uint64_t site = 0; site < 1000; ++site) {
    ASSERT_EQ(a.Draw(Tier::kPm, MemOp::kRead, Pattern::kRandom, 1, site, 0),
              b.Draw(Tier::kPm, MemOp::kRead, Pattern::kRandom, 1, site, 0));
  }
  EXPECT_EQ(a.Counters(), b.Counters());
  EXPECT_GT(a.Counters().stalls, 0u);
}

TEST(FaultDrawTest, FaultSetIsMonotoneInRate) {
  // Banded thresholds: the same uniform against a larger threshold — every
  // site faulting at the low rate also faults at the high rate.
  memsim::FaultInjector lo, hi;
  lo.SetPlan(StallOnlyPlan(0.05));
  hi.SetPlan(StallOnlyPlan(0.25));
  for (uint64_t site = 0; site < 2000; ++site) {
    const FaultKind a =
        lo.Draw(Tier::kPm, MemOp::kWrite, Pattern::kSequential, 2, site, 0);
    const FaultKind b =
        hi.Draw(Tier::kPm, MemOp::kWrite, Pattern::kSequential, 2, site, 0);
    if (a != FaultKind::kNone) {
      ASSERT_NE(b, FaultKind::kNone);
    }
  }
  EXPECT_GT(hi.Counters().stalls, lo.Counters().stalls);
}

TEST(FaultDrawTest, TailStallImmuneToOtherRates) {
  // DrawTailStall compares only against the stall band, so adding media
  // faults to the class leaves the tail-stall set untouched.
  FaultPlan with_media = StallOnlyPlan(0.1);
  with_media.at(Tier::kPm, MemOp::kRead, Pattern::kRandom).media = 0.5;
  memsim::FaultInjector plain, media;
  plain.SetPlan(StallOnlyPlan(0.1));
  media.SetPlan(with_media);
  for (uint64_t site = 0; site < 2000; ++site) {
    ASSERT_EQ(
        plain.DrawTailStall(Tier::kPm, MemOp::kRead, Pattern::kRandom, 3, site),
        media.DrawTailStall(Tier::kPm, MemOp::kRead, Pattern::kRandom, 3, site));
  }
}

TEST(FaultDrawTest, SummaryIsStable) {
  memsim::FaultInjector inj;
  inj.SetPlan(StallOnlyPlan(1.0));
  // Tail stalls self-recover: the draw books both the injection and the retry.
  EXPECT_TRUE(
      inj.DrawTailStall(Tier::kPm, MemOp::kRead, Pattern::kRandom, 1, 0));
  inj.AddPenaltySeconds(0.0123);
  const std::string summary = memsim::FaultCountersSummary(inj.Counters());
  EXPECT_NE(summary.find("injected=1"), std::string::npos);
  EXPECT_NE(summary.find("stall=1"), std::string::npos);
  EXPECT_NE(summary.find("retried=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine-level sweeps on a small RMAT graph.
// ---------------------------------------------------------------------------

graph::Graph SmallGraph() {
  graph::RmatParams params;
  params.scale = 11;
  params.num_edges = 1 << 14;
  params.seed = 5;
  return graph::GenerateRmat(params).value();
}

engine::RunReport RunWith(const graph::Graph& g, engine::SystemKind system,
                          const FaultPlan& plan, int threads) {
  auto ms = memsim::MemorySystem::CreateDefault();
  ms->SetFaultPlan(plan);
  ThreadPool pool(static_cast<size_t>(threads));
  engine::EngineOptions options;
  options.system = system;
  options.num_threads = threads;
  options.prone.dim = 16;
  options.prone.oversample = 4;
  options.prone.chebyshev_order = 4;
  auto report = engine::RunEmbedding(
      g, "rmat", options, exec::Context(ms.get(), &pool, threads));
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? std::move(report).value() : engine::RunReport{};
}

class FaultEngineTest : public ::testing::Test {
 protected:
  const graph::Graph g_ = SmallGraph();
};

TEST_F(FaultEngineTest, SameSeedByteIdenticalFaultReport) {
  auto plan = memsim::FaultPlanFromProfile("chaos:9").value();
  const engine::RunReport a = RunWith(g_, engine::SystemKind::kOmega, plan, 4);
  const engine::RunReport b = RunWith(g_, engine::SystemKind::kOmega, plan, 4);
  EXPECT_TRUE(a.faults_enabled);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(memsim::FaultCountersSummary(a.faults),
            memsim::FaultCountersSummary(b.faults));
  // Totals are bit-identical, not just close.
  EXPECT_EQ(std::memcmp(&a.total_seconds, &b.total_seconds, sizeof(double)), 0);
  EXPECT_TRUE(a.faults.Accounted());
}

TEST_F(FaultEngineTest, ZeroRatePlanMatchesDisabledEmbeddings) {
  // An enabled plan whose rates are all zero draws but never fires: no
  // injections, and the embedding bytes match the seed path exactly. The
  // simulated total may exceed the seed path by the WoFP health probe (the
  // probe is itself a charged access that only exists under injection).
  FaultPlan zero;
  zero.enabled = true;
  for (int threads : {1, 2, 8}) {
    const engine::RunReport off =
        RunWith(g_, engine::SystemKind::kOmega, FaultPlan{}, threads);
    const engine::RunReport on =
        RunWith(g_, engine::SystemKind::kOmega, zero, threads);
    EXPECT_EQ(on.faults.InjectedTotal(), 0u) << threads << " threads";
    EXPECT_GE(on.total_seconds, off.total_seconds) << threads << " threads";
    ASSERT_EQ(off.embedding.bytes(), on.embedding.bytes());
    ASSERT_GT(off.embedding.bytes(), 0u);
    EXPECT_EQ(std::memcmp(off.embedding.data(), on.embedding.data(),
                          off.embedding.bytes()), 0)
        << threads << " threads";
  }
}

TEST_F(FaultEngineTest, TimeMonotoneInStallRate) {
  double prev = 0.0;
  for (double rate : {0.0, 0.05, 0.2, 0.8}) {
    const engine::RunReport r =
        RunWith(g_, engine::SystemKind::kOmega, StallOnlyPlan(rate), 4);
    EXPECT_GE(r.total_seconds, prev) << "rate " << rate;
    prev = r.total_seconds;
  }
}

TEST_F(FaultEngineTest, StallsSelfRecoverAsRetries) {
  const engine::RunReport r =
      RunWith(g_, engine::SystemKind::kOmega, StallOnlyPlan(0.5), 4);
  EXPECT_GT(r.faults.stalls, 0u);
  EXPECT_EQ(r.faults.retried, r.faults.stalls);
  EXPECT_EQ(r.faults.degraded, 0u);
  EXPECT_EQ(r.faults.surfaced, 0u);
  EXPECT_TRUE(r.faults.Accounted());
  EXPECT_GT(r.faults.PenaltySeconds(), 0.0);
}

TEST_F(FaultEngineTest, EmbeddingUnchangedByFaults) {
  // Faults charge simulated time only; the computed embedding is the host
  // result and must be bit-identical at any fault rate.
  const engine::RunReport off =
      RunWith(g_, engine::SystemKind::kOmega, FaultPlan{}, 4);
  const engine::RunReport on = RunWith(
      g_, engine::SystemKind::kOmega,
      memsim::FaultPlanFromProfile("chaos").value(), 4);
  ASSERT_EQ(off.embedding.bytes(), on.embedding.bytes());
  EXPECT_EQ(std::memcmp(off.embedding.data(), on.embedding.data(),
                        off.embedding.bytes()), 0);
  EXPECT_GT(on.total_seconds, off.total_seconds);
}

TEST_F(FaultEngineTest, FlakyNetTimeoutsAllRetried) {
  auto plan = memsim::FaultPlanFromProfile("flaky-net").value();
  const engine::RunReport r =
      RunWith(g_, engine::SystemKind::kDistDgl, plan, 4);
  EXPECT_GT(r.faults.timeouts, 0u);
  EXPECT_EQ(r.faults.retried, r.faults.InjectedTotal());
  EXPECT_EQ(r.faults.degraded, 0u);
  EXPECT_EQ(r.faults.surfaced, 0u);
  EXPECT_TRUE(r.faults.Accounted());

  const engine::RunReport again =
      RunWith(g_, engine::SystemKind::kDistDgl, plan, 4);
  EXPECT_EQ(r.faults, again.faults);
}

TEST_F(FaultEngineTest, WornSsdSlowsButNeverFailsOutOfCore) {
  const engine::RunReport off =
      RunWith(g_, engine::SystemKind::kGinex, FaultPlan{}, 4);
  const engine::RunReport on = RunWith(
      g_, engine::SystemKind::kGinex,
      memsim::FaultPlanFromProfile("worn-ssd").value(), 4);
  EXPECT_GT(on.faults.InjectedTotal(), 0u);
  EXPECT_TRUE(on.faults.Accounted());
  EXPECT_GT(on.total_seconds, off.total_seconds);
}

TEST_F(FaultEngineTest, ProneHmSurfacesUnrecoverableStagingFault) {
  FaultPlan plan;
  plan.enabled = true;
  plan.at(Tier::kPm, MemOp::kRead, Pattern::kSequential).media = 1.0;

  auto ms = memsim::MemorySystem::CreateDefault();
  ms->SetFaultPlan(plan);
  ThreadPool pool(4);
  engine::EngineOptions options;
  options.system = engine::SystemKind::kProneHm;
  options.num_threads = 4;
  options.prone.dim = 16;
  options.prone.oversample = 4;
  options.prone.chebyshev_order = 4;
  auto report = engine::RunEmbedding(g_, "rmat", options,
                                     exec::Context(ms.get(), &pool, 4));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsIOError());
  EXPECT_GE(ms->Faults().surfaced, 1u);
  EXPECT_TRUE(ms->Faults().Accounted());
}

TEST_F(FaultEngineTest, ReportJsonCarriesFaultSection) {
  const engine::RunReport on = RunWith(
      g_, engine::SystemKind::kOmega,
      memsim::FaultPlanFromProfile("pm-stall").value(), 4);
  const std::string json = engine::ReportToJson(on);
  EXPECT_NE(json.find("\"fault\": {"), std::string::npos);
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"injected\": "), std::string::npos);

  const engine::RunReport off =
      RunWith(g_, engine::SystemKind::kOmega, FaultPlan{}, 4);
  const std::string off_json = engine::ReportToJson(off);
  EXPECT_NE(off_json.find("\"enabled\": false"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Machine loss in the durable distributed path.
// ---------------------------------------------------------------------------

engine::RunReport RunDist(const graph::Graph& g, engine::SystemKind system,
                          const FaultPlan& plan,
                          const engine::DistParams& params) {
  auto ms = memsim::MemorySystem::CreateDefault();
  ms->SetFaultPlan(plan);
  ThreadPool pool(4);
  engine::EngineOptions options;
  options.system = system;
  options.num_threads = 4;
  options.prone.dim = 16;
  auto report = engine::RunDistributedFamily(
      g, "rmat", options, exec::Context(ms.get(), &pool, 4), params);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? std::move(report).value() : engine::RunReport{};
}

TEST_F(FaultEngineTest, MachineLossSameSeedByteIdentical) {
  // flaky-net carries a machine-loss rate; the durable sync path draws it
  // per (machine, round), and a fixed seed replays the same kill schedule.
  auto plan = memsim::FaultPlanFromProfile("flaky-net:3").value();
  engine::DistParams params;
  params.checkpoint_every_rounds = 6;
  const engine::RunReport a =
      RunDist(g_, engine::SystemKind::kDistDgl, plan, params);
  const engine::RunReport b =
      RunDist(g_, engine::SystemKind::kDistDgl, plan, params);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(std::memcmp(&a.total_seconds, &b.total_seconds, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.recovery_seconds, &b.recovery_seconds,
                        sizeof(double)), 0);
  EXPECT_TRUE(a.faults.Accounted());
}

TEST_F(FaultEngineTest, MachineLossRecoveredKeepsAccountingIdentity) {
  FaultPlan plan;
  plan.enabled = true;
  plan.kills = {{0, 1}, {2, 5}};
  engine::DistParams params;
  params.checkpoint_every_rounds = 4;
  const engine::RunReport r =
      RunDist(g_, engine::SystemKind::kDistDgl, plan, params);
  EXPECT_EQ(r.faults.machine_losses, 2u);
  EXPECT_EQ(r.faults.recovered, 2u);
  EXPECT_TRUE(r.faults.Accounted());
  EXPECT_GT(r.recovery_seconds, 0.0);
  EXPECT_GT(r.ckpt_seconds, 0.0);
  // The durability costs are part of the run's total.
  EXPECT_DOUBLE_EQ(r.total_seconds,
                   r.read_seconds + r.embed_seconds + r.ckpt_seconds +
                       r.recovery_seconds);
}

TEST_F(FaultEngineTest, MachineLossRateInertOutsideDurablePath) {
  // The legacy bulk sync (checkpoint_every_rounds == 0) never consults the
  // machine-loss rate: a plan carrying one charges byte-identically.
  FaultPlan base;
  base.enabled = true;
  FaultPlan lossy = base;
  lossy.machine_loss = 1.0;
  lossy.kills = {{0, 0}};
  const engine::DistParams params;  // legacy sync
  const engine::RunReport off =
      RunDist(g_, engine::SystemKind::kDistGer, base, params);
  const engine::RunReport on =
      RunDist(g_, engine::SystemKind::kDistGer, lossy, params);
  EXPECT_EQ(on.faults.machine_losses, 0u);
  EXPECT_EQ(std::memcmp(&off.total_seconds, &on.total_seconds, sizeof(double)),
            0);
}

TEST_F(FaultEngineTest, RecoveryTimeMonotoneInLogLengthSinceCheckpoint) {
  // With the cadence far beyond the run (no checkpoint ever lands), a kill
  // at round r replays r + 1 rounds of log records: recovery time must grow
  // with the replayed suffix. DistDGL runs 24 sync rounds.
  double prev = 0.0;
  for (uint64_t round : {1u, 6u, 12u, 22u}) {
    FaultPlan plan;
    plan.enabled = true;
    plan.kills = {{0, round}};
    engine::DistParams params;
    params.checkpoint_every_rounds = 1000;
    const engine::RunReport r =
        RunDist(g_, engine::SystemKind::kDistDgl, plan, params);
    EXPECT_EQ(r.faults.recovered, 1u);
    EXPECT_GT(r.recovery_seconds, prev) << "kill round " << round;
    prev = r.recovery_seconds;
  }
}

TEST_F(FaultEngineTest, DurableSyncQuorumLossFailsTheRun) {
  FaultPlan plan;
  plan.enabled = true;
  plan.at(Tier::kNetwork, MemOp::kWrite, Pattern::kSequential).timeout = 1.0;

  auto ms = memsim::MemorySystem::CreateDefault();
  ms->SetFaultPlan(plan);
  ThreadPool pool(4);
  engine::EngineOptions options;
  options.system = engine::SystemKind::kDistGer;
  options.num_threads = 4;
  options.prone.dim = 16;
  engine::DistParams params;
  params.checkpoint_every_rounds = 2;
  auto report = engine::RunDistributedFamily(
      g_, "rmat", options, exec::Context(ms.get(), &pool, 4), params);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsIOError());
  EXPECT_GT(ms->Faults().surfaced, 0u);
  EXPECT_TRUE(ms->Faults().Accounted());
}

// ---------------------------------------------------------------------------
// Seed sweep: the determinism contract holds for arbitrary seeds and systems.
// ---------------------------------------------------------------------------

using SeedCase = std::tuple<uint64_t, engine::SystemKind>;

class FaultSeedSweep : public ::testing::TestWithParam<SeedCase> {};

TEST_P(FaultSeedSweep, TwoRunsByteIdentical) {
  const auto [seed, system] = GetParam();
  auto plan = memsim::FaultPlanFromProfile("chaos").value();
  plan.seed = seed;
  const graph::Graph g = SmallGraph();
  const engine::RunReport a = RunWith(g, system, plan, 4);
  const engine::RunReport b = RunWith(g, system, plan, 4);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(std::memcmp(&a.total_seconds, &b.total_seconds, sizeof(double)), 0);
  EXPECT_TRUE(a.faults.Accounted());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FaultSeedSweep,
    ::testing::Combine(::testing::Values(1u, 42u, 1234567u),
                       ::testing::Values(engine::SystemKind::kOmega,
                                         engine::SystemKind::kGinex,
                                         engine::SystemKind::kDistGer)));

}  // namespace
}  // namespace omega
