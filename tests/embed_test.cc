// Unit tests for the ProNE embedding model: Chebyshev coefficients and filter
// application against dense references, target/propagation matrix
// construction, the end-to-end embedding, and quality checks.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "embed/chebyshev.h"
#include "embed/prone.h"
#include "embed/quality.h"
#include "graph/rmat.h"
#include "linalg/gemm.h"
#include "linalg/random_matrix.h"
#include "sparse/csdb_ops.h"

namespace omega::embed {
namespace {

using graph::CsdbMatrix;
using graph::Edge;
using graph::Graph;
using linalg::DenseMatrix;

// Uncharged executor over the reference kernel.
SpmmExecutor PlainExecutor() {
  return [](const CsdbMatrix& m, const DenseMatrix& in,
            DenseMatrix* out) -> Result<double> {
    OMEGA_RETURN_NOT_OK(sparse::ReferenceSpmm(m, in, out));
    return 0.001;
  };
}

Graph CommunityGraph() {
  // Two dense communities of 16 nodes plus a weak bridge: embeddings must
  // separate them.
  std::vector<Edge> edges;
  omega::Rng rng(5);
  auto add_clique_ish = [&](graph::NodeId base) {
    for (graph::NodeId i = 0; i < 16; ++i) {
      for (graph::NodeId j = i + 1; j < 16; ++j) {
        if (rng.NextDouble() < 0.55) {
          edges.push_back(Edge{base + i, base + j, 1.0f});
        }
      }
    }
  };
  add_clique_ish(0);
  add_clique_ish(16);
  edges.push_back(Edge{0, 16, 1.0f});
  return Graph::FromEdges(32, edges, true).value();
}

TEST(ChebyshevTest, BandPassFilterShape) {
  const SpectralFilter g = ProneBandPass(0.2, 0.5);
  // Peak near mu, decaying away from it.
  EXPECT_GT(g(0.2), g(1.0));
  EXPECT_GT(g(0.2), g(2.0));
  EXPECT_GT(g(0.0), 0.0);
}

TEST(ChebyshevTest, CoefficientsReproduceFilterPointwise) {
  const SpectralFilter g = ProneBandPass(0.2, 0.5);
  const auto coeffs = ChebyshevCoefficients(g, 16);
  ASSERT_EQ(coeffs.size(), 16u);
  // Evaluate the expansion at sample eigenvalues and compare with g.
  for (double lambda : {0.05, 0.3, 0.9, 1.4, 1.9}) {
    const double x = lambda - 1.0;
    double t_prev = 1.0;
    double t_cur = x;
    double sum = coeffs[0] * t_prev + coeffs[1] * t_cur;
    for (size_t k = 2; k < coeffs.size(); ++k) {
      const double t_next = 2.0 * x * t_cur - t_prev;
      sum += coeffs[k] * t_next;
      t_prev = t_cur;
      t_cur = t_next;
    }
    EXPECT_NEAR(sum, g(lambda), 1e-6) << "lambda=" << lambda;
  }
}

TEST(ChebyshevTest, ConstantFilterIsIdentity) {
  // g == 1 => coefficients [1, 0, 0, ...] and the filter output equals the
  // input block.
  const auto coeffs = ChebyshevCoefficients([](double) { return 1.0; }, 8);
  EXPECT_NEAR(coeffs[0], 1.0, 1e-12);
  for (size_t k = 1; k < coeffs.size(); ++k) EXPECT_NEAR(coeffs[k], 0.0, 1e-12);

  const CsdbMatrix s = BuildPropagationMatrix(
      CsdbMatrix::FromGraph(CommunityGraph()));
  const DenseMatrix r = linalg::GaussianMatrix(s.num_rows(), 4, 9);
  DenseMatrix out;
  auto secs = ChebyshevFilterApply(s, coeffs, r, &out, PlainExecutor());
  ASSERT_TRUE(secs.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(out, r), 1e-5);
}

TEST(ChebyshevTest, FilterApplyMatchesDenseSpectralComputation) {
  // Compare T_k recurrence output against explicitly computing
  // sum c_k T_k(-S) R with dense matrix powers.
  const CsdbMatrix s_sparse =
      BuildPropagationMatrix(CsdbMatrix::FromGraph(CommunityGraph()));
  const DenseMatrix s = sparse::ToDense(s_sparse);
  const size_t n = s.rows();
  const DenseMatrix r = linalg::GaussianMatrix(n, 3, 4);
  const auto coeffs = ChebyshevCoefficients(ProneBandPass(0.2, 0.5), 6);

  DenseMatrix out;
  ASSERT_TRUE(
      ChebyshevFilterApply(s_sparse, coeffs, r, &out, PlainExecutor()).ok());

  // Dense reference: T_0 = R, T_1 = -S R, T_{k+1} = -2 S T_k - T_{k-1}.
  DenseMatrix t_prev = r;
  DenseMatrix t_cur;
  {
    DenseMatrix sr;
    ASSERT_TRUE(linalg::Gemm(s, r, &sr).ok());
    sr.Scale(-1.0f);
    t_cur = sr;
  }
  DenseMatrix expect(n, 3);
  ASSERT_TRUE(expect.AddScaled(t_prev, static_cast<float>(coeffs[0])).ok());
  ASSERT_TRUE(expect.AddScaled(t_cur, static_cast<float>(coeffs[1])).ok());
  for (size_t k = 2; k < coeffs.size(); ++k) {
    DenseMatrix st;
    ASSERT_TRUE(linalg::Gemm(s, t_cur, &st).ok());
    DenseMatrix t_next(n, 3);
    ASSERT_TRUE(t_next.AddScaled(st, -2.0f).ok());
    ASSERT_TRUE(t_next.AddScaled(t_prev, -1.0f).ok());
    ASSERT_TRUE(expect.AddScaled(t_next, static_cast<float>(coeffs[k])).ok());
    t_prev = t_cur;
    t_cur = t_next;
  }
  EXPECT_LT(DenseMatrix::MaxAbsDiff(out, expect), 1e-3);
}

TEST(ProneMatrixTest, TargetMatrixIsNonNegativeAndSymmetricPattern) {
  const CsdbMatrix adj = CsdbMatrix::FromGraph(CommunityGraph());
  const CsdbMatrix target = BuildTargetMatrix(adj, 1.0);
  EXPECT_EQ(target.nnz(), adj.nnz());
  for (float v : target.nnz_list()) EXPECT_GE(v, 0.0f);
  // Symmetry of values (needed for apply == apply^T in the tSVD).
  const DenseMatrix d = sparse::ToDense(target);
  for (size_t i = 0; i < d.rows(); ++i) {
    for (size_t j = 0; j < d.cols(); ++j) {
      EXPECT_NEAR(d.At(i, j), d.At(j, i), 1e-5);
    }
  }
}

TEST(ProneMatrixTest, HigherLambdaShrinksTarget) {
  const CsdbMatrix adj = CsdbMatrix::FromGraph(CommunityGraph());
  const CsdbMatrix t1 = BuildTargetMatrix(adj, 1.0);
  const CsdbMatrix t5 = BuildTargetMatrix(adj, 5.0);
  double sum1 = 0.0;
  double sum5 = 0.0;
  for (float v : t1.nnz_list()) sum1 += v;
  for (float v : t5.nnz_list()) sum5 += v;
  EXPECT_LT(sum5, sum1);
}

TEST(ProneMatrixTest, PropagationMatrixSpectralRadiusAtMostOne) {
  const CsdbMatrix s = BuildPropagationMatrix(
      CsdbMatrix::FromGraph(CommunityGraph()));
  // Power iteration estimate of the spectral radius.
  std::vector<float> x(s.num_rows(), 1.0f);
  std::vector<float> y;
  double norm = 0.0;
  for (int it = 0; it < 50; ++it) {
    ASSERT_TRUE(sparse::SpMV(s, x, &y).ok());
    norm = 0.0;
    for (float v : y) norm += static_cast<double>(v) * v;
    norm = std::sqrt(norm);
    for (size_t i = 0; i < x.size(); ++i) x[i] = static_cast<float>(y[i] / norm);
  }
  EXPECT_LE(norm, 1.0 + 1e-3);
}

TEST(ProneTest, EndToEndProducesStructuredEmbedding) {
  const Graph g = CommunityGraph();
  const CsdbMatrix adj = CsdbMatrix::FromGraph(g);
  ProneOptions opts;
  opts.dim = 8;
  opts.oversample = 4;
  auto result = ProneEmbed(adj, opts, PlainExecutor());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& emb = result.value();
  EXPECT_EQ(emb.vectors.rows(), 32u);
  EXPECT_EQ(emb.vectors.cols(), 8u);
  EXPECT_GT(emb.factorize_seconds, 0.0);
  EXPECT_GT(emb.propagate_seconds, 0.0);
  EXPECT_NEAR(emb.total_seconds, emb.factorize_seconds + emb.propagate_seconds,
              1e-12);

  // Rows are L2-normalized.
  for (size_t r = 0; r < 32; ++r) {
    double norm = 0.0;
    for (size_t c = 0; c < 8; ++c) {
      norm += static_cast<double>(emb.vectors.At(r, c)) * emb.vectors.At(r, c);
    }
    EXPECT_NEAR(norm, 1.0, 1e-3) << "row " << r;
  }

  // Same-community pairs score higher than cross-community pairs on average.
  const DenseMatrix original = emb.ToOriginalOrder();
  double same = 0.0;
  double cross = 0.0;
  int same_n = 0;
  int cross_n = 0;
  for (graph::NodeId u = 0; u < 16; ++u) {
    for (graph::NodeId v = u + 1; v < 16; ++v) {
      same += EmbeddingScore(original, u, v);
      ++same_n;
      cross += EmbeddingScore(original, u, v + 16);
      ++cross_n;
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n + 0.1);
}

// Host-side thread count must not change a single embedding bit: dense
// stages reduce in fixed order (gemm.h) and the SpMM executor is per-row
// deterministic. This is the contract DESIGN.md's "Host time vs simulated
// time" section documents.
TEST(ProneTest, EmbeddingBitIdenticalAcrossThreadCounts) {
  graph::RmatParams params;
  params.scale = 12;
  params.num_edges = 40000;
  params.seed = 3;
  const Graph g = graph::GenerateRmat(params).value();
  const CsdbMatrix adj = CsdbMatrix::FromGraph(g);

  ProneOptions opts;
  opts.dim = 16;
  opts.oversample = 4;
  opts.chebyshev_order = 6;

  auto serial = ProneEmbed(adj, opts, PlainExecutor());
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  ThreadPool pool(8);
  ProneOptions pooled_opts = opts;
  pooled_opts.pool = &pool;
  auto pooled = ProneEmbed(adj, pooled_opts, PlainExecutor());
  ASSERT_TRUE(pooled.ok()) << pooled.status().ToString();

  EXPECT_EQ(DenseMatrix::MaxAbsDiff(serial.value().vectors,
                                    pooled.value().vectors),
            0.0);

  // One more thread count; and the pooled reference SpMM must agree too.
  ThreadPool pool2(2);
  ProneOptions pooled2_opts = opts;
  pooled2_opts.pool = &pool2;
  SpmmExecutor pooled_spmm = [&](const CsdbMatrix& m, const DenseMatrix& in,
                                 DenseMatrix* out) -> Result<double> {
    OMEGA_RETURN_NOT_OK(sparse::ReferenceSpmm(m, in, out, &pool2));
    return 0.001;
  };
  auto pooled2 = ProneEmbed(adj, pooled2_opts, pooled_spmm);
  ASSERT_TRUE(pooled2.ok());
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(serial.value().vectors,
                                    pooled2.value().vectors),
            0.0);
}

TEST(ChebyshevTest, FilterApplyBitIdenticalAcrossThreadCounts) {
  graph::RmatParams params;
  params.scale = 12;
  params.num_edges = 30000;
  params.seed = 9;
  const Graph g = graph::GenerateRmat(params).value();
  CsdbMatrix s = BuildPropagationMatrix(CsdbMatrix::FromGraph(g));
  const DenseMatrix r = linalg::GaussianMatrix(s.num_rows(), 16, 7);
  const auto coeffs = ChebyshevCoefficients(ProneBandPass(0.2, 0.5), 8);

  DenseMatrix serial_out;
  auto serial = ChebyshevFilterApply(s, coeffs, r, &serial_out, PlainExecutor());
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(8);
  DenseMatrix pooled_out;
  auto pooled = ChebyshevFilterApply(s, coeffs, r, &pooled_out, PlainExecutor(),
                                     &pool);
  ASSERT_TRUE(pooled.ok());
  EXPECT_EQ(DenseMatrix::MaxAbsDiff(serial_out, pooled_out), 0.0);
}

TEST(ProneTest, ToOriginalOrderInvertsPerm) {
  const Graph g = CommunityGraph();
  const CsdbMatrix adj = CsdbMatrix::FromGraph(g);
  ProneOptions opts;
  opts.dim = 4;
  opts.oversample = 2;
  auto result = ProneEmbed(adj, opts, PlainExecutor());
  ASSERT_TRUE(result.ok());
  const DenseMatrix original = result.value().ToOriginalOrder();
  for (uint32_t r = 0; r < adj.num_rows(); ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(original.At(adj.perm()[r], c), result.value().vectors.At(r, c));
    }
  }
}

TEST(ProneTest, ValidatesOptions) {
  const CsdbMatrix adj = CsdbMatrix::FromGraph(CommunityGraph());
  ProneOptions opts;
  opts.dim = 0;
  EXPECT_FALSE(ProneEmbed(adj, opts, PlainExecutor()).ok());
  opts.dim = 40;  // dim + oversample > 32 nodes
  EXPECT_FALSE(ProneEmbed(adj, opts, PlainExecutor()).ok());
}

TEST(ProneTest, SimulatedSecondsAccumulateAcrossSpmms) {
  const CsdbMatrix adj = CsdbMatrix::FromGraph(CommunityGraph());
  ProneOptions opts;
  opts.dim = 4;
  opts.oversample = 2;
  opts.chebyshev_order = 6;
  int calls = 0;
  SpmmExecutor counting = [&](const CsdbMatrix& m, const DenseMatrix& in,
                              DenseMatrix* out) -> Result<double> {
    OMEGA_RETURN_NOT_OK(sparse::ReferenceSpmm(m, in, out));
    ++calls;
    return 1.0;
  };
  auto result = ProneEmbed(adj, opts, counting);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().total_seconds, static_cast<double>(calls));
  // Chebyshev of order 6 issues exactly 5 SpMMs (orders 1..5).
  EXPECT_EQ(result.value().propagate_seconds, 5.0);
}

TEST(QualityTest, AucSeparatesStructureFromRandom) {
  const Graph g = CommunityGraph();
  const CsdbMatrix adj = CsdbMatrix::FromGraph(g);
  ProneOptions opts;
  opts.dim = 8;
  opts.oversample = 4;
  auto emb = ProneEmbed(adj, opts, PlainExecutor());
  ASSERT_TRUE(emb.ok());
  auto auc = LinkPredictionAuc(g, emb.value().ToOriginalOrder(), 500, 3);
  ASSERT_TRUE(auc.ok()) << auc.status().ToString();
  EXPECT_GT(auc.value(), 0.65);

  // A random embedding scores near 0.5.
  const DenseMatrix random = linalg::GaussianMatrix(g.num_nodes(), 8, 1);
  auto random_auc = LinkPredictionAuc(g, random, 500, 3);
  ASSERT_TRUE(random_auc.ok());
  EXPECT_NEAR(random_auc.value(), 0.5, 0.15);
  EXPECT_GT(auc.value(), random_auc.value());
}

TEST(QualityTest, ValidatesInput) {
  const Graph g = CommunityGraph();
  const DenseMatrix wrong = linalg::GaussianMatrix(5, 4, 1);
  EXPECT_FALSE(LinkPredictionAuc(g, wrong, 10, 1).ok());
}

TEST(QualityTest, TopKSimilarExcludesQueryAndRanks) {
  DenseMatrix emb(4, 2);
  emb.At(0, 0) = 1.0f;
  emb.At(1, 0) = 0.9f;
  emb.At(2, 0) = -1.0f;
  emb.At(3, 0) = 0.5f;
  const auto top = TopKSimilar(emb, 0, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
  EXPECT_EQ(TopKSimilar(emb, 0, 99).size(), 3u);
}

}  // namespace
}  // namespace omega::embed
