// Tests for the system-level pieces added around the engines: the
// distributed analogues, the baseline kernels, CXL profiles, the dense-stage
// cost model, the gather cost blend, and embedding persistence.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "embed/embedding_io.h"
#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "omega/baselines.h"
#include "omega/distributed_sim.h"
#include "omega/engine.h"
#include "sparse/csdb_ops.h"
#include "sparse/spmm.h"

namespace omega {
namespace {

graph::Graph TestGraph(uint32_t scale = 9, uint64_t edges = 5000) {
  graph::RmatParams params;
  params.scale = scale;
  params.num_edges = edges;
  return graph::GenerateRmat(params).value();
}

// --- GatherSeconds: the Eq. 4/5 blend ---------------------------------------

TEST(GatherSecondsTest, MonotoneInEntropy) {
  auto ms = memsim::MemorySystem::CreateDefault();
  const memsim::Placement pm{memsim::Tier::kPm, 0};
  double prev = 0.0;
  for (double z : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double s = sparse::GatherSeconds(ms.get(), 0, pm, z, 100000, 4);
    EXPECT_GE(s, prev) << "z=" << z;
    prev = s;
  }
}

TEST(GatherSecondsTest, EndpointsMatchPureCharges) {
  auto ms = memsim::MemorySystem::CreateDefault();
  const memsim::Placement pm{memsim::Tier::kPm, 0};
  const uint64_t touches = 65536;
  const double z0 = sparse::GatherSeconds(ms.get(), 0, pm, 0.0, touches, 4);
  const double pure_seq = ms->AccessSeconds(pm, 0, memsim::MemOp::kRead,
                                            memsim::Pattern::kSequential,
                                            touches * 64, 1, 4);
  EXPECT_NEAR(z0, pure_seq, 1e-12);
  const double z1 = sparse::GatherSeconds(ms.get(), 0, pm, 1.0, touches, 4);
  const double pure_rand = ms->AccessSeconds(pm, 0, memsim::MemOp::kRead,
                                             memsim::Pattern::kRandom, touches * 64,
                                             touches, 4);
  EXPECT_NEAR(z1, pure_rand, 1e-12);
  EXPECT_EQ(sparse::GatherSeconds(ms.get(), 0, pm, 0.5, 0, 4), 0.0);
}

// --- CXL profiles ------------------------------------------------------------

TEST(CxlProfilesTest, FasterThanPmAndLocalityInsensitive) {
  const memsim::ProfileSet pm = memsim::DefaultProfiles();
  const memsim::ProfileSet cxl = memsim::CxlProfiles();
  using memsim::Locality;
  using memsim::MemOp;
  using memsim::Pattern;
  using memsim::Tier;
  // CXL beats Optane on every curve of the capacity tier.
  for (MemOp op : {MemOp::kRead, MemOp::kWrite}) {
    for (Pattern pat : {Pattern::kSequential, Pattern::kRandom}) {
      EXPECT_GT(cxl.Get(Tier::kPm).Curve(op, pat, Locality::kLocal).peak_gbps,
                pm.Get(Tier::kPm).Curve(op, pat, Locality::kLocal).peak_gbps);
    }
  }
  // Symmetric local/remote (the link is the only hop).
  EXPECT_DOUBLE_EQ(
      cxl.Get(Tier::kPm)
          .Curve(MemOp::kWrite, Pattern::kSequential, Locality::kLocal)
          .peak_gbps,
      cxl.Get(Tier::kPm)
          .Curve(MemOp::kWrite, Pattern::kSequential, Locality::kRemote)
          .peak_gbps);
  // DRAM tier untouched.
  EXPECT_DOUBLE_EQ(
      cxl.Get(Tier::kDram)
          .Curve(MemOp::kRead, Pattern::kSequential, Locality::kLocal)
          .peak_gbps,
      pm.Get(Tier::kDram)
          .Curve(MemOp::kRead, Pattern::kSequential, Locality::kLocal)
          .peak_gbps);
}

TEST(CxlProfilesTest, OmegaRunsFasterOnCxlThanPm) {
  const graph::Graph g = TestGraph();
  ThreadPool pool(8);
  memsim::MemorySystem pm_machine(memsim::TopologyConfig{},
                                  memsim::DefaultProfiles());
  memsim::MemorySystem cxl_machine(memsim::TopologyConfig{},
                                   memsim::CxlProfiles());
  engine::EngineOptions opts;
  opts.system = engine::SystemKind::kOmega;
  opts.num_threads = 8;
  opts.prone.dim = 8;
  opts.prone.oversample = 4;
  const double on_pm =
      engine::RunEmbedding(g, "t", opts, exec::Context(&pm_machine, &pool)).value().embed_seconds;
  const double on_cxl =
      engine::RunEmbedding(g, "t", opts, exec::Context(&cxl_machine, &pool)).value().embed_seconds;
  EXPECT_LT(on_cxl, on_pm);
}

// --- Distributed analogues ----------------------------------------------------

class DistributedTest : public ::testing::Test {
 protected:
  void SetUp() override { ms_ = memsim::MemorySystem::CreateDefault(); }

  Result<engine::RunReport> Run(engine::SystemKind kind, const graph::Graph& g,
                                const engine::DistParams& params = {}) {
    engine::EngineOptions opts;
    opts.system = kind;
    opts.num_threads = 8;
    opts.prone.dim = 16;
    return engine::RunDistributedFamily(g, "t", opts, exec::Context(ms_.get()),
                                        params);
  }

  std::unique_ptr<memsim::MemorySystem> ms_;
};

TEST_F(DistributedTest, RuntimeScalesWithGraphSize) {
  const graph::Graph small = TestGraph(8, 2000);
  const graph::Graph big = TestGraph(11, 16000);
  for (auto kind : {engine::SystemKind::kDistGer, engine::SystemKind::kDistDgl}) {
    const double t_small = Run(kind, small).value().total_seconds;
    const double t_big = Run(kind, big).value().total_seconds;
    EXPECT_GT(t_big, 2.0 * t_small) << engine::SystemName(kind);
  }
}

TEST_F(DistributedTest, MoreMachinesRunFaster) {
  const graph::Graph g = TestGraph(10, 8000);
  engine::DistParams four;
  engine::DistParams eight;
  eight.machines = 8;
  for (auto kind : {engine::SystemKind::kDistGer, engine::SystemKind::kDistDgl}) {
    const double t4 = Run(kind, g, four).value().total_seconds;
    const double t8 = Run(kind, g, eight).value().total_seconds;
    EXPECT_LT(t8, t4) << engine::SystemName(kind);
  }
}

TEST_F(DistributedTest, DglSamplingDominates) {
  // The paper attributes ~80% of DistDGL's runtime to sampling.
  const graph::Graph g = TestGraph(10, 8000);
  const auto report = Run(engine::SystemKind::kDistDgl, g).value();
  EXPECT_GT(report.factorize_seconds / report.embed_seconds, 0.5);
}

TEST_F(DistributedTest, GerBeatsDgl) {
  const graph::Graph g = TestGraph(10, 8000);
  EXPECT_LT(Run(engine::SystemKind::kDistGer, g).value().total_seconds,
            Run(engine::SystemKind::kDistDgl, g).value().total_seconds);
}

TEST_F(DistributedTest, NoEmbeddingProduced) {
  const graph::Graph g = TestGraph(8, 2000);
  EXPECT_EQ(Run(engine::SystemKind::kDistGer, g).value().embedding.rows(), 0u);
}

// --- Baseline kernels ----------------------------------------------------------

TEST(StaticCsrSpmmTest, MatchesReference) {
  const graph::Graph g = TestGraph();
  const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(g);
  const auto csr = sparse::ToCsr(a).value();
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 6, 3);
  linalg::DenseMatrix expected;
  ASSERT_TRUE(sparse::ReferenceSpmm(a, b, &expected).ok());
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(4);
  linalg::DenseMatrix c(a.num_rows(), 6);
  const auto r = engine::StaticCsrSpmm(csr, b, &c, sparse::SpmmPlacements{},
                                       exec::Context(ms.get(), &pool, 4));
  EXPECT_LT(linalg::DenseMatrix::MaxAbsDiff(c, expected), 1e-4);
  EXPECT_EQ(r.nnz_processed, csr.nnz());
  EXPECT_GT(r.phase_seconds, 0.0);
}

TEST(StaticCsrSpmmTest, SuffersStragglersOnSkew) {
  // Equal-row chunking on a degree-sorted matrix: thread 0 gets the hubs.
  graph::RmatParams params;
  params.scale = 11;
  params.num_edges = 30000;
  params.a = 0.7;
  params.b = 0.15;
  params.c = 0.1;
  params.d = 0.05;
  const graph::CsdbMatrix a =
      graph::CsdbMatrix::FromGraph(graph::GenerateRmat(params).value());
  const auto csr = sparse::ToCsr(a).value();
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 8, 3);
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(8);
  linalg::DenseMatrix c(a.num_rows(), 8);
  const auto r = engine::StaticCsrSpmm(csr, b, &c, sparse::SpmmPlacements{},
                                       exec::Context(ms.get(), &pool, 8));
  double mx = 0.0;
  double sum = 0.0;
  for (double s : r.thread_seconds) {
    mx = std::max(mx, s);
    sum += s;
  }
  EXPECT_GT(mx, 3.0 * (sum / r.thread_seconds.size()));
}

TEST(OutOfCoreTest, GinexSlowerThanMariusOnSameGraph) {
  const graph::Graph g = TestGraph(10, 10000);
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(8);
  engine::EngineOptions opts;
  opts.num_threads = 8;
  opts.prone.dim = 8;
  opts.prone.oversample = 4;
  opts.system = engine::SystemKind::kGinex;
  const double ginex =
      engine::RunEmbedding(g, "t", opts, exec::Context(ms.get(), &pool)).value().total_seconds;
  opts.system = engine::SystemKind::kMariusGnn;
  const double marius =
      engine::RunEmbedding(g, "t", opts, exec::Context(ms.get(), &pool)).value().total_seconds;
  EXPECT_GT(ginex, marius);
}

// --- Dense stage model -----------------------------------------------------------

TEST(DenseStageTest, ScalesWithNodesAndOrder) {
  embed::ProneOptions prone;
  prone.dim = 32;
  prone.oversample = 8;
  const auto small = engine::EstimateDenseStage(1000, prone);
  const auto big = engine::EstimateDenseStage(4000, prone);
  EXPECT_EQ(big.tsvd_bytes, 4 * small.tsvd_bytes);
  EXPECT_EQ(big.cheb_bytes, 4 * small.cheb_bytes);
  prone.chebyshev_order *= 2;
  EXPECT_EQ(engine::EstimateDenseStage(1000, prone).cheb_bytes,
            2 * small.cheb_bytes);
}

TEST(DenseStageTest, PmCostsMoreThanDram) {
  auto ms = memsim::MemorySystem::CreateDefault();
  const uint64_t bytes = 64 << 20;
  const exec::Context ctx(ms.get(), nullptr, 8);
  const double dram = engine::DenseStageSeconds(
      ctx, {memsim::Tier::kDram, memsim::Placement::kInterleaved}, bytes,
      1 << 20);
  const double pm = engine::DenseStageSeconds(
      ctx, {memsim::Tier::kPm, memsim::Placement::kInterleaved}, bytes,
      1 << 20);
  EXPECT_GT(pm, 2.0 * dram);
  // Accelerated arithmetic shrinks the compute portion.
  const double gpu = engine::DenseStageSeconds(
      ctx, {memsim::Tier::kDram, memsim::Placement::kInterleaved}, 0,
      1ULL << 32, 40.0);
  const double cpu = engine::DenseStageSeconds(
      ctx, {memsim::Tier::kDram, memsim::Placement::kInterleaved}, 0,
      1ULL << 32, 1.0);
  EXPECT_NEAR(cpu / gpu, 40.0, 1e-6);
}

// --- Embedding persistence ----------------------------------------------------------

class EmbeddingIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "omega_embed_io_test";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(EmbeddingIoTest, BinaryRoundTrip) {
  const linalg::DenseMatrix m = linalg::GaussianMatrix(100, 16, 5);
  ASSERT_TRUE(embed::SaveEmbeddingBinary(m, Path("e.bin")).ok());
  auto loaded = embed::LoadEmbeddingBinary(Path("e.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(linalg::DenseMatrix::MaxAbsDiff(m, loaded.value()), 0.0);
}

TEST_F(EmbeddingIoTest, TsvHasOneRowPerNode) {
  const linalg::DenseMatrix m = linalg::GaussianMatrix(17, 4, 5);
  ASSERT_TRUE(embed::SaveEmbeddingTsv(m, Path("e.tsv")).ok());
  std::ifstream in(Path("e.tsv"));
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(std::count(line.begin(), line.end(), '\t'), 4);
  }
  EXPECT_EQ(lines, 17u);
}

TEST_F(EmbeddingIoTest, RejectsCorruptFiles) {
  {
    std::ofstream out(Path("junk.bin"), std::ios::binary);
    out << "not an embedding";
  }
  EXPECT_FALSE(embed::LoadEmbeddingBinary(Path("junk.bin")).ok());
  EXPECT_FALSE(embed::LoadEmbeddingBinary(Path("missing.bin")).ok());
  EXPECT_FALSE(
      embed::SaveEmbeddingBinary(linalg::DenseMatrix(1, 1), "/no/such/dir/e").ok());
}

// --- ASL engine toggle -----------------------------------------------------------

TEST(AslEngineTest, StreamingGraphBenefitsFromOverlap) {
  // A graph big enough that the dense working set exceeds the DRAM window.
  graph::RmatParams params;
  params.scale = 14;
  params.num_edges = 400000;
  const graph::Graph g = graph::GenerateRmat(params).value();
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(8);
  auto with = engine::EngineOptions{};
  with.system = engine::SystemKind::kOmega;
  with.num_threads = 8;
  with.prone.dim = 32;
  auto without = with;
  without.features.use_asl = false;
  const double t_with =
      engine::RunEmbedding(g, "t", with, exec::Context(ms.get(), &pool)).value().embed_seconds;
  const double t_without =
      engine::RunEmbedding(g, "t", without, exec::Context(ms.get(), &pool)).value().embed_seconds;
  EXPECT_LE(t_with, t_without);
}

}  // namespace
}  // namespace omega
