// Tests of the exec::Context / PhaseSpan trace layer: traffic partitioning
// across sibling spans, the phase-sum-equals-total invariant of RunReport,
// and the JSON writer.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "graph/rmat.h"
#include "memsim/memory_system.h"
#include "omega/engine.h"
#include "omega/exec_context.h"
#include "omega/report.h"

namespace omega {
namespace {

using memsim::MemOp;
using memsim::Pattern;
using memsim::Placement;
using memsim::Tier;

graph::Graph TestGraph() {
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 12000;
  auto g = graph::GenerateRmat(params);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(TrafficSnapshotTest, RemoteFractionZeroWhenNoDramPmTraffic) {
  memsim::TrafficSnapshot empty;
  EXPECT_EQ(empty.RemoteFraction(), 0.0);

  // SSD/network traffic alone must not divide by zero either: locality only
  // counts DRAM and PM bytes.
  auto ms = memsim::MemorySystem::CreateDefault();
  ms->AccessSeconds({Tier::kSsd, 0}, 0, MemOp::kRead, Pattern::kSequential,
                    1 << 20, 1, 1);
  EXPECT_EQ(ms->Traffic().RemoteFraction(), 0.0);
}

TEST(PhaseSpanTest, SiblingSpanDeltasSumToGlobalSnapshot) {
  auto ms = memsim::MemorySystem::CreateDefault();
  exec::TraceRecorder recorder;
  const exec::Context ctx(ms.get(), nullptr, 1, &recorder);

  {
    exec::PhaseSpan a(ctx, "a");
    ms->AccessSeconds({Tier::kDram, 0}, 0, MemOp::kRead, Pattern::kSequential,
                      1 << 20, 1, 1);
    ms->AccessSeconds({Tier::kPm, 1}, 0, MemOp::kWrite, Pattern::kRandom,
                      1 << 16, 64, 1);
  }
  {
    exec::PhaseSpan b(ctx, "b");
    ms->AccessSeconds({Tier::kSsd, 0}, 0, MemOp::kRead, Pattern::kSequential,
                      1 << 18, 1, 1);
    {
      // Nested span: its traffic is contained in b's delta.
      exec::PhaseSpan inner(ctx, "b.inner", /*aux=*/true);
      ms->AccessSeconds({Tier::kDram, 1}, 0, MemOp::kWrite, Pattern::kSequential,
                        1 << 12, 1, 1);
    }
  }

  const auto records = recorder.Records();
  ASSERT_EQ(records.size(), 3u);  // a, b.inner, b (inner finishes before b)

  memsim::TrafficSnapshot sibling_sum;
  for (const auto& r : records) {
    if (r.name == "a" || r.name == "b") sibling_sum += r.traffic;
  }
  EXPECT_TRUE(sibling_sum == ms->Traffic());

  // The nested delta is a subset of its parent's.
  const auto& inner =
      records[0].name == "b.inner" ? records[0]
                                   : (records[1].name == "b.inner" ? records[1]
                                                                   : records[2]);
  const auto& outer_b =
      records[0].name == "b" ? records[0]
                             : (records[1].name == "b" ? records[1] : records[2]);
  EXPECT_TRUE(inner.aux);
  EXPECT_LE(inner.TotalBytes(), outer_b.TotalBytes());
  EXPECT_GT(inner.TierBytes(Tier::kDram), 0u);
}

TEST(RunReportPhasesTest, NonAuxPhaseSecondsSumToTotal) {
  const graph::Graph g = TestGraph();
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(4);
  const exec::Context ctx(ms.get(), &pool, 4);

  for (const engine::SystemKind kind :
       {engine::SystemKind::kOmega, engine::SystemKind::kProneDram,
        engine::SystemKind::kGinex, engine::SystemKind::kDistGer}) {
    engine::EngineOptions options;
    options.system = kind;
    options.num_threads = 4;
    options.prone.dim = 8;
    options.prone.oversample = 4;
    options.prone.chebyshev_order = 4;
    const auto report = engine::RunEmbedding(g, "rmat", options, ctx);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const engine::RunReport& r = report.value();
    EXPECT_GE(r.phases.size(), 4u) << r.system;

    double non_aux = 0.0;
    for (const exec::PhaseRecord& p : r.phases) {
      if (!p.aux) non_aux += p.sim_seconds;
    }
    EXPECT_NEAR(non_aux, r.total_seconds, 1e-9) << r.system;

    // The scalar stage fields are per-stage sums of the phases.
    double factorize = 0.0;
    for (const exec::PhaseRecord& p : r.phases) {
      if (!p.aux && p.name.rfind("factorize", 0) == 0) factorize += p.sim_seconds;
    }
    if (kind != engine::SystemKind::kDistGer) {
      EXPECT_NEAR(factorize, r.factorize_seconds, 1e-9) << r.system;
    }
  }
}

TEST(RunReportPhasesTest, OuterRecorderReceivesForwardedPhases) {
  const graph::Graph g = TestGraph();
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(2);
  exec::TraceRecorder outer;
  const exec::Context ctx(ms.get(), &pool, 2, &outer);

  engine::EngineOptions options;
  options.num_threads = 2;
  options.prone.dim = 8;
  options.prone.oversample = 4;
  options.prone.chebyshev_order = 3;
  const auto report = engine::RunEmbedding(g, "rmat", options, ctx);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(outer.Records().size(), report.value().phases.size());
}

TEST(ReportJsonTest, RoundTripsScalarsPhasesAndFailedCells) {
  engine::RunReport report;
  report.system = "omega";
  report.dataset = "it has \"quotes\"\nand newlines";
  report.read_seconds = 1.5;
  report.factorize_seconds = 2.25;
  report.propagate_seconds = 4.0;
  report.embed_seconds = 6.25;
  report.total_seconds = 7.75;
  report.remote_fraction = 0.123456789012345678;
  exec::PhaseRecord phase;
  phase.name = "read";
  phase.sim_seconds = 1.5;
  phase.traffic.bytes[0][0][0][0] = 111;  // DRAM read/seq/local
  phase.traffic.bytes[1][1][1][1] = 222;  // PM write/rand/remote
  phase.remote_fraction = 222.0 / 333.0;
  report.phases.push_back(phase);
  exec::PhaseRecord aux;
  aux.name = "wofp_build";
  aux.aux = true;
  aux.sim_seconds = 0.25;
  report.phases.push_back(aux);

  const std::string json = engine::ReportToJson(report);
  EXPECT_NE(json.find("\"system\": \"omega\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\"\\n"), std::string::npos);
  EXPECT_NE(json.find("\"failed\": false"), std::string::npos);
  EXPECT_NE(json.find("\"link_auc\": null"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"read\""), std::string::npos);
  EXPECT_NE(json.find("\"DRAM\": 111"), std::string::npos);
  EXPECT_NE(json.find("\"PM\": 222"), std::string::npos);
  EXPECT_NE(json.find("\"aux\": true"), std::string::npos);
  // %.17g round-trips the remote fraction bit-exactly.
  const std::string key = "\"remote_fraction\": ";
  const size_t pos = json.find(key);
  ASSERT_NE(pos, std::string::npos);
  EXPECT_EQ(std::stod(json.substr(pos + key.size())), report.remote_fraction);

  // Failed (OOM) cells carry the failure string and no timings.
  const engine::RunReport failed = engine::FailedReport(
      engine::SystemKind::kOmegaDram, "FR",
      Status::CapacityExceeded("DRAM full"));
  const std::string failed_json = engine::ReportToJson(failed);
  EXPECT_NE(failed_json.find("\"failed\": true"), std::string::npos);
  EXPECT_NE(failed_json.find("DRAM full"), std::string::npos);
  EXPECT_NE(failed_json.find("\"phases\": []"), std::string::npos);

  // Array form wraps both.
  const std::string arr = engine::ReportsToJson({report, failed});
  EXPECT_EQ(arr.front(), '[');
  EXPECT_EQ(arr.back(), ']');
}

TEST(ContextTest, ResolvesThreadsAndRebinds) {
  auto ms = memsim::MemorySystem::CreateDefault();
  ThreadPool pool(6);
  const exec::Context from_pool(ms.get(), &pool);
  EXPECT_EQ(from_pool.threads(), 6);
  const exec::Context bare(ms.get());
  EXPECT_EQ(bare.threads(), 1);
  EXPECT_EQ(from_pool.WithThreads(3).threads(), 3);
  exec::TraceRecorder rec;
  EXPECT_EQ(from_pool.WithTrace(&rec).trace(), &rec);
  EXPECT_EQ(from_pool.trace(), nullptr);
}

}  // namespace
}  // namespace omega
