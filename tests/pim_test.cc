// PIM offload tests: the simulated bank tier never changes a byte of output
// (host-only / all-PIM / auto are bit-identical at any thread count), the
// entropy-aware placement keeps hub blocks on host, the subset allocators
// cover exactly the host ranges, the plan cache keys on the PIM config, and
// fault injection on the bank link degrades blocks back to the host path
// while preserving the accounting identity.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "common/thread_pool.h"
#include "graph/datasets.h"
#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "memsim/fault.h"
#include "memsim/memory_system.h"
#include "numa/nadp.h"
#include "omega/engine.h"
#include "sched/hetero_placement.h"

namespace omega {
namespace {

using graph::CsdbMatrix;
using linalg::DenseMatrix;
using sched::PimConfig;
using sched::PimPolicy;

CsdbMatrix TestMatrix(uint32_t scale = 10, uint64_t edges = 15000) {
  graph::RmatParams params;
  params.scale = scale;
  params.num_edges = edges;
  return CsdbMatrix::FromGraph(graph::GenerateRmat(params).value());
}

PimConfig TestPim(PimPolicy policy, const memsim::MemorySystem& ms) {
  PimConfig cfg;
  cfg.banks = 64;
  cfg.mram_bytes_per_bank = ms.topology().config().pim_mram_bytes_per_bank;
  cfg.bank_ops_per_second = ms.cost_model().profiles().pim_bank_ops_per_second;
  cfg.policy = policy;
  return cfg;
}

// ---------------------------------------------------------------------------
// Placement.
// ---------------------------------------------------------------------------

class PlacementTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The PK analogue: a real power-law skew whose hub block is expensive to
    // serialize onto one bank, so the auto policy has a genuine split to find
    // (an unskewed R-MAT at this scale offloads everything).
    a_ = CsdbMatrix::FromGraph(graph::LoadDatasetByName("PK").value());
    ms_ = memsim::MemorySystem::CreateDefault();
  }

  sched::HeteroPlacement Place(PimPolicy policy, size_t dense_cols = 32) {
    PimConfig cfg = TestPim(policy, *ms_);
    cfg.dense_cols = dense_cols;
    // 36 host threads: the paper's testbed, where the hub-vs-tail trade-off
    // is real (with few host threads the banks win everywhere).
    return sched::PlaceDegreeBlocks(a_, cfg, *ms_, 36, memsim::Tier::kPm,
                                    memsim::Tier::kPm, memsim::Tier::kDram);
  }

  CsdbMatrix a_;
  std::unique_ptr<memsim::MemorySystem> ms_;
};

TEST_F(PlacementTest, HostOnlyPlacesNothingOnPim) {
  const auto p = Place(PimPolicy::kHostOnly);
  EXPECT_FALSE(p.any_pim());
  EXPECT_TRUE(p.pim_ranges.empty());
  EXPECT_EQ(p.pim_nnz, 0u);
  ASSERT_EQ(p.host_ranges.size(), 1u);
  EXPECT_EQ(p.host_ranges[0].begin, 0u);
  EXPECT_EQ(p.host_ranges[0].end, a_.num_rows());
}

TEST_F(PlacementTest, AllPimPlacesEveryFittingBlock) {
  const auto p = Place(PimPolicy::kAllPim);
  ASSERT_TRUE(p.any_pim());
  for (const sched::HeteroBlock& b : p.blocks) {
    EXPECT_EQ(b.on_pim, b.fits_mram)
        << "rows [" << b.row_begin << ", " << b.row_end << ")";
  }
}

TEST_F(PlacementTest, AutoKeepsHubBlocksOnHost) {
  const auto p = Place(PimPolicy::kAuto);
  ASSERT_TRUE(p.any_pim());
  ASSERT_GT(p.host_nnz, 0u);
  // CSDB orders blocks by non-increasing degree: the first (hub) block is
  // bank-serial on PIM and must stay on host, while the mid/low-degree bulk
  // of the rows is offloaded. (A tiny tail block can stay on host too — its
  // host cost undercuts the fixed ship overhead — so only the hub end is
  // pinned.)
  EXPECT_FALSE(p.blocks.front().on_pim);
  const uint64_t hub_degree = p.blocks.front().degree;
  for (const sched::HeteroBlock& b : p.blocks) {
    if (b.on_pim) EXPECT_LT(b.degree, hub_degree);
  }
  EXPECT_GT(p.pim_rows, a_.num_rows() / 2);
}

TEST_F(PlacementTest, RangesPartitionTheMatrix) {
  const auto p = Place(PimPolicy::kAuto);
  uint64_t rows = 0;
  for (const auto& r : p.pim_ranges) rows += r.end - r.begin;
  for (const auto& r : p.host_ranges) rows += r.end - r.begin;
  EXPECT_EQ(rows, a_.num_rows());
  EXPECT_EQ(p.pim_nnz + p.host_nnz, a_.nnz());
}

TEST_F(PlacementTest, AutoEstimateNeverWorseThanFixedPolicies) {
  const auto host = Place(PimPolicy::kHostOnly);
  const auto all = Place(PimPolicy::kAllPim);
  const auto aut = Place(PimPolicy::kAuto);
  auto estimate = [](const sched::HeteroPlacement& p) {
    return std::max(p.est_host_seconds, p.est_pim_pipeline_seconds) +
           p.est_pim_tail_seconds;
  };
  EXPECT_LE(estimate(aut), estimate(host) * 1.0001);
  EXPECT_LE(estimate(aut), estimate(all) * 1.0001);
}

// ---------------------------------------------------------------------------
// Subset allocators.
// ---------------------------------------------------------------------------

TEST(AllocateSubsetTest, CoversExactlyTheRequestedRows) {
  const CsdbMatrix a = TestMatrix();
  const std::vector<sched::RowRange> rows = {
      {0, 7}, {40, 201}, {500, a.num_rows()}};
  sched::AllocatorOptions options;
  options.num_threads = 4;
  for (auto kind : {sched::AllocatorKind::kRoundRobin,
                    sched::AllocatorKind::kWorkloadBalanced,
                    sched::AllocatorKind::kEntropyAware}) {
    const auto workloads = sched::AllocateSubset(a, kind, rows, options);
    ASSERT_EQ(workloads.size(), 4u);
    // Flatten the per-thread ranges; they must tile `rows` exactly, in order.
    std::vector<sched::RowRange> got;
    uint64_t nnz = 0;
    for (const auto& w : workloads) {
      for (const auto& r : w.ranges) {
        ASSERT_LT(r.begin, r.end);
        if (!got.empty() && got.back().end == r.begin) {
          got.back().end = r.end;
        } else {
          got.push_back(r);
        }
      }
      nnz += w.nnz;
    }
    ASSERT_EQ(got.size(), rows.size()) << static_cast<int>(kind);
    uint64_t want_nnz = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(got[i].begin, rows[i].begin);
      EXPECT_EQ(got[i].end, rows[i].end);
      for (auto cur = a.BlocksInRange(rows[i].begin, rows[i].end); !cur.AtEnd();
           cur.Next()) {
        const auto s = cur.span();
        want_nnz += s.rows() * s.degree;
      }
    }
    EXPECT_EQ(nnz, want_nnz) << static_cast<int>(kind);
  }
}

TEST(AllocateSubsetTest, FullMatrixSubsetProcessesAllNnz) {
  const CsdbMatrix a = TestMatrix();
  const std::vector<sched::RowRange> all = {{0, a.num_rows()}};
  sched::AllocatorOptions options;
  options.num_threads = 3;
  const auto workloads = sched::AllocateSubset(
      a, sched::AllocatorKind::kEntropyAware, all, options);
  uint64_t nnz = 0;
  for (const auto& w : workloads) nnz += w.nnz;
  EXPECT_EQ(nnz, a.nnz());
}

// ---------------------------------------------------------------------------
// Bit-identity through NadpSpmm.
// ---------------------------------------------------------------------------

class PimSpmmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = TestMatrix();
    b_ = linalg::GaussianMatrix(a_.num_cols(), 8, 5);
    ms_ = memsim::MemorySystem::CreateDefault();
  }

  numa::NadpOptions Options(PimPolicy policy, int threads) {
    numa::NadpOptions opts;
    opts.num_threads = threads;
    opts.use_wofp = false;
    opts.pim = TestPim(policy, *ms_);
    return opts;
  }

  CsdbMatrix a_;
  DenseMatrix b_;
  std::unique_ptr<memsim::MemorySystem> ms_;
};

TEST_F(PimSpmmTest, PoliciesBitIdenticalAcrossThreadCounts) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(static_cast<size_t>(threads));
    const exec::Context ctx(ms_.get(), &pool, threads);
    DenseMatrix reference(a_.num_rows(), b_.cols());
    numa::NadpSpmm(a_, b_, &reference, Options(PimPolicy::kHostOnly, threads),
                   ctx);
    for (PimPolicy policy : {PimPolicy::kAuto, PimPolicy::kAllPim}) {
      DenseMatrix c(a_.num_rows(), b_.cols());
      const numa::NadpResult r =
          numa::NadpSpmm(a_, b_, &c, Options(policy, threads), ctx);
      ASSERT_EQ(c.bytes(), reference.bytes());
      EXPECT_EQ(std::memcmp(c.data(), reference.data(), c.bytes()), 0)
          << sched::PimPolicyName(policy) << " at " << threads << " threads";
      EXPECT_GT(r.pim_nnz, 0u) << sched::PimPolicyName(policy);
      EXPECT_GT(r.pim_compute_seconds, 0.0);
      EXPECT_EQ(r.pim_degraded_blocks, 0u);
    }
  }
}

TEST_F(PimSpmmTest, OffloadChargesPimTierTraffic) {
  ThreadPool pool(4);
  const exec::Context ctx(ms_.get(), &pool, 4);
  DenseMatrix c(a_.num_rows(), b_.cols());
  ms_->ResetTraffic();
  numa::NadpSpmm(a_, b_, &c, Options(PimPolicy::kHostOnly, 4), ctx);
  EXPECT_EQ(ms_->Traffic().TierBytes(memsim::Tier::kPim), 0u);
  ms_->ResetTraffic();
  const numa::NadpResult r =
      numa::NadpSpmm(a_, b_, &c, Options(PimPolicy::kAuto, 4), ctx);
  EXPECT_GT(ms_->Traffic().TierBytes(memsim::Tier::kPim), 0u);
  EXPECT_GT(r.pim_transfer_seconds, 0.0);
  EXPECT_GT(r.phase_seconds, 0.0);
}

TEST_F(PimSpmmTest, AutoAtLeastAsFastAsFixedPolicies) {
  ThreadPool pool(8);
  const exec::Context ctx(ms_.get(), &pool, 8);
  DenseMatrix c(a_.num_rows(), b_.cols());
  double seconds[3] = {};
  const PimPolicy policies[] = {PimPolicy::kHostOnly, PimPolicy::kAllPim,
                                PimPolicy::kAuto};
  for (int i = 0; i < 3; ++i) {
    seconds[i] =
        numa::NadpSpmm(a_, b_, &c, Options(policies[i], 8), ctx).phase_seconds;
  }
  EXPECT_LE(seconds[2], seconds[0] * 1.0001);
  EXPECT_LE(seconds[2], seconds[1] * 1.0001);
}

// ---------------------------------------------------------------------------
// Plan cache keying.
// ---------------------------------------------------------------------------

TEST_F(PimSpmmTest, PlanCacheKeysOnPimConfig) {
  ThreadPool pool(4);
  const exec::Context ctx(ms_.get(), &pool, 4);
  numa::NadpPlanCache cache;
  const numa::NadpOptions host = Options(PimPolicy::kHostOnly, 4);
  numa::NadpOptions autop = Options(PimPolicy::kAuto, 4);
  autop.pim.dense_cols = 8;

  cache.Get(a_, host, ctx);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Get(a_, host, ctx);
  EXPECT_EQ(cache.hits(), 1u);
  // A different PIM config is a different plan.
  cache.Get(a_, autop, ctx);
  EXPECT_EQ(cache.misses(), 2u);
  // So is the same config at a different operand width (the ship cost is
  // width-invariant, so the split depends on dense_cols).
  numa::NadpOptions wider = autop;
  wider.pim.dense_cols = 64;
  cache.Get(a_, wider, ctx);
  EXPECT_EQ(cache.misses(), 3u);
  cache.Get(a_, autop, ctx);
  EXPECT_EQ(cache.hits(), 2u);

  const numa::NadpPlan& plan = cache.Get(a_, autop, ctx);
  EXPECT_TRUE(plan.hetero().any_pim());
  EXPECT_FALSE(cache.Get(a_, host, ctx).hetero().any_pim());
}

// ---------------------------------------------------------------------------
// Fault injection on the PIM link.
// ---------------------------------------------------------------------------

engine::RunReport RunEngine(const graph::Graph& g,
                            const memsim::FaultPlan& plan, PimPolicy policy,
                            int banks) {
  auto ms = memsim::MemorySystem::CreateDefault();
  ms->SetFaultPlan(plan);
  ThreadPool pool(4);
  engine::EngineOptions options;
  options.system = engine::SystemKind::kOmega;
  options.num_threads = 4;
  options.prone.dim = 16;
  options.prone.oversample = 4;
  options.prone.chebyshev_order = 4;
  options.features.pim_banks = banks;
  options.features.pim_placement = policy;
  auto report = engine::RunEmbedding(g, "rmat", options,
                                     exec::Context(ms.get(), &pool, 4));
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? std::move(report).value() : engine::RunReport{};
}

TEST(PimFaultTest, FlakyLinkDegradesToHostAndStaysAccounted) {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 6000;
  const graph::Graph g = graph::GenerateRmat(params).value();

  const engine::RunReport clean =
      RunEngine(g, memsim::FaultPlan{}, PimPolicy::kAllPim, 64);
  const engine::RunReport flaky =
      RunEngine(g, memsim::FaultPlanFromProfile("flaky-pim").value(),
                PimPolicy::kAllPim, 64);

  // The profile's timeout rate is high enough that some transfer exhausts its
  // retries and degrades the block to the host panel path.
  EXPECT_GT(flaky.faults.timeouts, 0u);
  EXPECT_GT(flaky.faults.degraded, 0u);
  EXPECT_EQ(flaky.faults.surfaced, 0u);
  EXPECT_TRUE(flaky.faults.Accounted())
      << memsim::FaultCountersSummary(flaky.faults);

  // Degradation re-prices the block, never recomputes it: bit-identical.
  ASSERT_EQ(clean.embedding.bytes(), flaky.embedding.bytes());
  ASSERT_GT(clean.embedding.bytes(), 0u);
  EXPECT_EQ(std::memcmp(clean.embedding.data(), flaky.embedding.data(),
                        clean.embedding.bytes()),
            0);
  EXPECT_GT(flaky.total_seconds, clean.total_seconds);

  // Same seed, same draws: the fault report is reproducible.
  const engine::RunReport again =
      RunEngine(g, memsim::FaultPlanFromProfile("flaky-pim").value(),
                PimPolicy::kAllPim, 64);
  EXPECT_EQ(flaky.faults, again.faults);
}

TEST(PimFaultTest, EngineBitIdenticalWithPimAcrossPolicies) {
  graph::RmatParams params;
  params.scale = 9;
  params.num_edges = 6000;
  const graph::Graph g = graph::GenerateRmat(params).value();
  const engine::RunReport off =
      RunEngine(g, memsim::FaultPlan{}, PimPolicy::kHostOnly, 0);
  for (PimPolicy policy :
       {PimPolicy::kHostOnly, PimPolicy::kAuto, PimPolicy::kAllPim}) {
    const engine::RunReport on =
        RunEngine(g, memsim::FaultPlan{}, policy, 64);
    ASSERT_EQ(off.embedding.bytes(), on.embedding.bytes());
    EXPECT_EQ(std::memcmp(off.embedding.data(), on.embedding.data(),
                          off.embedding.bytes()),
              0)
        << sched::PimPolicyName(policy);
  }
}

}  // namespace
}  // namespace omega
