// Unit tests for CSDB (§III-A) against the paper's worked example (Fig. 5):
// Deg_list = [4, 3, 2], Deg_ind = [0, 3, 5] (we append the end sentinels),
// Deg_ptr per Eq. 1, and the O(|degrees|) index-size claim.

#include <gtest/gtest.h>

#include "graph/csdb.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/rmat.h"

namespace omega::graph {
namespace {

Graph MakePaperGraph() {
  // Fig. 5(a): degrees come out as [4,4,4,3,3,2,2] for v0..v6.
  std::vector<Edge> edges = {
      {0, 1, 1.0f}, {0, 2, 1.0f}, {0, 3, 1.0f}, {0, 4, 1.0f},
      {1, 3, 1.0f}, {1, 4, 1.0f}, {1, 6, 1.0f},
      {2, 4, 1.0f}, {2, 5, 1.0f}, {2, 6, 1.0f},
      {3, 5, 1.0f},
  };
  return Graph::FromEdges(7, edges, true).value();
}

TEST(CsdbTest, PaperExampleBlockMetadata) {
  const CsdbMatrix m = CsdbMatrix::FromGraph(MakePaperGraph());
  EXPECT_EQ(m.num_rows(), 7u);
  EXPECT_EQ(m.nnz(), 22u);
  // Fig. 5(b): Deg_list = [4, 3, 2]; Deg_ind starts = [0, 3, 5].
  ASSERT_EQ(m.num_blocks(), 3u);
  EXPECT_EQ(m.deg_list(), (std::vector<uint32_t>{4, 3, 2}));
  EXPECT_EQ(m.deg_ind(), (std::vector<uint32_t>{0, 3, 5, 7}));
  EXPECT_EQ(m.block_ptr(), (std::vector<uint64_t>{0, 12, 18, 22}));
}

TEST(CsdbTest, RowPtrMatchesEquationOne) {
  const CsdbMatrix m = CsdbMatrix::FromGraph(MakePaperGraph());
  // Deg_ptr(v_i) = sum of degrees of previous rows (Eq. 1).
  uint64_t expected = 0;
  for (uint32_t r = 0; r < m.num_rows(); ++r) {
    EXPECT_EQ(m.RowPtr(r), expected) << "row " << r;
    expected += m.RowDegree(r);
  }
  EXPECT_EQ(expected, m.nnz());
}

TEST(CsdbTest, RowDegreesNonIncreasing) {
  const CsdbMatrix m = CsdbMatrix::FromGraph(MakePaperGraph());
  for (uint32_t r = 1; r < m.num_rows(); ++r) {
    EXPECT_LE(m.RowDegree(r), m.RowDegree(r - 1));
  }
}

TEST(CsdbTest, PermMapsBackToOriginalDegrees) {
  const Graph g = MakePaperGraph();
  const CsdbMatrix m = CsdbMatrix::FromGraph(g);
  ASSERT_EQ(m.perm().size(), 7u);
  for (uint32_t r = 0; r < m.num_rows(); ++r) {
    EXPECT_EQ(m.RowDegree(r), g.degree(m.perm()[r]));
  }
}

TEST(CsdbTest, NeighborsOfV1ViaDegPtr) {
  // The paper's §III-A walkthrough: v1 has degree 4 and Deg_ptr 4; its
  // neighbors come from col_list[4..8). In CSDB id space row 1 is the
  // second degree-4 node (original v1).
  const Graph g = MakePaperGraph();
  const CsdbMatrix m = CsdbMatrix::FromGraph(g);
  EXPECT_EQ(m.perm()[1], 1u);
  EXPECT_EQ(m.RowDegree(1), 4u);
  EXPECT_EQ(m.RowPtr(1), 4u);
  // Map CSDB columns back to original ids and compare with the graph.
  std::vector<NodeId> nbrs;
  for (uint32_t k = 0; k < 4; ++k) {
    nbrs.push_back(m.perm()[m.col_list()[m.RowPtr(1) + k]]);
  }
  std::sort(nbrs.begin(), nbrs.end());
  EXPECT_EQ(nbrs, (std::vector<NodeId>{0, 3, 4, 6}));
}

TEST(CsdbTest, BlockOfRowBinarySearch) {
  const CsdbMatrix m = CsdbMatrix::FromGraph(MakePaperGraph());
  EXPECT_EQ(m.BlockOfRow(0), 0u);
  EXPECT_EQ(m.BlockOfRow(2), 0u);
  EXPECT_EQ(m.BlockOfRow(3), 1u);
  EXPECT_EQ(m.BlockOfRow(4), 1u);
  EXPECT_EQ(m.BlockOfRow(5), 2u);
  EXPECT_EQ(m.BlockOfRow(6), 2u);
}

TEST(CsdbTest, CursorWalksAllRowsInOrder) {
  const CsdbMatrix m = CsdbMatrix::FromGraph(MakePaperGraph());
  uint32_t row = 0;
  uint64_t ptr = 0;
  for (auto cur = m.Rows(0); !cur.AtEnd(); cur.Next()) {
    EXPECT_EQ(cur.row(), row);
    EXPECT_EQ(cur.ptr(), ptr);
    EXPECT_EQ(cur.degree(), m.RowDegree(row));
    ptr += cur.degree();
    ++row;
  }
  EXPECT_EQ(row, m.num_rows());
  EXPECT_EQ(ptr, m.nnz());
}

TEST(CsdbTest, CursorFromMiddleRow) {
  const CsdbMatrix m = CsdbMatrix::FromGraph(MakePaperGraph());
  auto cur = m.Rows(4);
  EXPECT_EQ(cur.row(), 4u);
  EXPECT_EQ(cur.ptr(), m.RowPtr(4));
  cur.Next();
  cur.Next();
  cur.Next();
  EXPECT_TRUE(cur.AtEnd());
}

TEST(CsdbTest, CursorAtEndImmediately) {
  const CsdbMatrix m = CsdbMatrix::FromGraph(MakePaperGraph());
  EXPECT_TRUE(m.Rows(7).AtEnd());
}

TEST(CsdbTest, IndexBytesAreDegreeBounded) {
  // The CSDB claim: index metadata is O(|distinct degrees|), far below CSR's
  // O(|V|) row pointers on a skewed graph.
  RmatParams params;
  params.scale = 12;
  params.num_edges = 60000;
  const Graph g = GenerateRmat(params).value();
  const CsdbMatrix csdb = CsdbMatrix::FromGraph(g);
  const CsrMatrix csr = CsrMatrix::FromGraph(g);
  EXPECT_LT(csdb.IndexBytes() * 5, csr.IndexBytes());
  EXPECT_EQ(csdb.num_blocks(), g.num_distinct_degrees());
}

TEST(CsdbTest, FromPartsValidation) {
  // Degrees must be non-increasing.
  auto bad = CsdbMatrix::FromParts(2, 2, {1, 2}, {0, 0, 1}, {1, 1, 1});
  EXPECT_FALSE(bad.ok());
  // Sizes must agree.
  auto bad2 = CsdbMatrix::FromParts(2, 2, {2, 1}, {0, 1}, {1, 1});
  EXPECT_FALSE(bad2.ok());
  // Columns in range.
  auto bad3 = CsdbMatrix::FromParts(2, 2, {2, 1}, {0, 5, 1}, {1, 1, 1});
  EXPECT_FALSE(bad3.ok());
  // A valid construction round-trips.
  auto ok = CsdbMatrix::FromParts(3, 3, {2, 1, 0}, {1, 2, 0}, {1, 2, 3});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().RowDegree(0), 2u);
  EXPECT_EQ(ok.value().RowDegree(2), 0u);
  EXPECT_EQ(ok.value().RowPtr(1), 2u);
}

TEST(CsdbTest, HandlesZeroDegreeTailRows) {
  // Isolated nodes form a trailing degree-0 block.
  std::vector<Edge> edges = {{0, 1, 1.0f}};
  const Graph g = Graph::FromEdges(4, edges, true).value();
  const CsdbMatrix m = CsdbMatrix::FromGraph(g);
  EXPECT_EQ(m.num_blocks(), 2u);
  EXPECT_EQ(m.deg_list().back(), 0u);
  EXPECT_EQ(m.RowDegree(3), 0u);
  uint32_t rows_seen = 0;
  for (auto cur = m.Rows(0); !cur.AtEnd(); cur.Next()) ++rows_seen;
  EXPECT_EQ(rows_seen, 4u);
}

TEST(CsdbTest, LargeGraphRoundTripAgainstGraph) {
  RmatParams params;
  params.scale = 10;
  params.num_edges = 10000;
  const Graph g = GenerateRmat(params).value();
  const CsdbMatrix m = CsdbMatrix::FromGraph(g);
  EXPECT_EQ(m.nnz(), g.num_arcs());
  // Every CSDB row's column set equals the original node's neighbor set.
  std::vector<NodeId> inverse(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) inverse[m.perm()[i]] = i;
  for (auto cur = m.Rows(0); !cur.AtEnd(); cur.Next()) {
    const NodeId original = m.perm()[cur.row()];
    ASSERT_EQ(cur.degree(), g.degree(original));
    std::vector<NodeId> expected;
    for (uint32_t k = 0; k < g.degree(original); ++k) {
      expected.push_back(inverse[g.neighbors(original)[k]]);
    }
    std::sort(expected.begin(), expected.end());
    for (uint32_t k = 0; k < cur.degree(); ++k) {
      EXPECT_EQ(m.col_list()[cur.ptr() + k], expected[k]);
    }
  }
}

}  // namespace
}  // namespace omega::graph
