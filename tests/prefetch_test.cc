// Unit tests for WoFP (§III-C): the top-M store, the eta type-selection rule,
// frequency vs degree scoring, DRAM reservation fallback, and the end-to-end
// effect on SpMM cost.

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.h"
#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "prefetch/topm_store.h"
#include "prefetch/wofp.h"
#include "sched/allocators.h"
#include "sparse/csdb_ops.h"

namespace omega::prefetch {
namespace {

using graph::CsdbMatrix;

TEST(TopMStoreTest, KeepsHighestScores) {
  std::vector<ScoredKey> candidates = {{1, 10}, {2, 50}, {3, 30}, {4, 5}, {5, 40}};
  const TopMStore store = TopMStore::Build(candidates, 3, 10);
  EXPECT_EQ(store.size(), 3u);
  EXPECT_TRUE(store.Contains(2));
  EXPECT_TRUE(store.Contains(5));
  EXPECT_TRUE(store.Contains(3));
  EXPECT_FALSE(store.Contains(1));
  EXPECT_FALSE(store.Contains(4));
  EXPECT_EQ(store.MinScore(), 30u);
  EXPECT_EQ(store.SimBytes(), 48u);
}

TEST(TopMStoreTest, DeterministicTieBreaking) {
  std::vector<ScoredKey> candidates = {{9, 7}, {2, 7}, {5, 7}, {1, 7}};
  const TopMStore store = TopMStore::Build(candidates, 2, 10);
  EXPECT_TRUE(store.Contains(1));
  EXPECT_TRUE(store.Contains(2));  // smaller keys win ties
  EXPECT_FALSE(store.Contains(9));
}

TEST(TopMStoreTest, EdgeCases) {
  EXPECT_EQ(TopMStore::Build({}, 5, 10).size(), 0u);
  EXPECT_EQ(TopMStore::Build({{1, 1}}, 0, 10).size(), 0u);
  const TopMStore all = TopMStore::Build({{1, 1}, {2, 2}}, 99, 10);
  EXPECT_EQ(all.size(), 2u);
  EXPECT_FALSE(all.Contains(7));
  EXPECT_FALSE(all.Contains(999));  // out of universe
  EXPECT_EQ(TopMStore().MinScore(), 0u);
}

TEST(StreamingTopMTest, TracksExactCounts) {
  StreamingTopM tracker(3);
  for (int i = 0; i < 5; ++i) tracker.Observe(7);
  for (int i = 0; i < 3; ++i) tracker.Observe(2);
  tracker.Observe(9);
  EXPECT_EQ(tracker.DistinctKeys(), 3u);
  EXPECT_EQ(tracker.TotalObservations(), 9u);
  EXPECT_EQ(tracker.CountOf(7), 5u);
  EXPECT_EQ(tracker.CountOf(2), 3u);
  EXPECT_EQ(tracker.CountOf(42), 0u);
}

TEST(StreamingTopMTest, FinalizeSelectsHottest) {
  StreamingTopM tracker(2);
  for (int i = 0; i < 10; ++i) tracker.Observe(1);
  for (int i = 0; i < 7; ++i) tracker.Observe(5);
  for (int i = 0; i < 2; ++i) tracker.Observe(3);
  const TopMStore store = tracker.Finalize(10);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains(1));
  EXPECT_TRUE(store.Contains(5));
  EXPECT_FALSE(store.Contains(3));
  EXPECT_EQ(store.MinScore(), 7u);
}

TEST(StreamingTopMTest, FinalizeMatchesBatchBuild) {
  // Streaming counting then finalizing equals building from exact counts.
  Rng rng(5);
  StreamingTopM tracker(50);
  std::unordered_map<graph::NodeId, uint64_t> exact;
  for (int i = 0; i < 20000; ++i) {
    const auto key = static_cast<graph::NodeId>(rng.NextBounded(300));
    tracker.Observe(key);
    exact[key]++;
  }
  std::vector<ScoredKey> candidates;
  for (const auto& [key, count] : exact) candidates.push_back({key, count});
  const TopMStore batch = TopMStore::Build(std::move(candidates), 50, 300);
  const TopMStore streamed = tracker.Finalize(300);
  ASSERT_EQ(batch.size(), streamed.size());
  for (const auto& e : batch.entries()) {
    EXPECT_TRUE(streamed.Contains(e.key)) << e.key;
  }
}

TEST(SelectPrefetcherTypeTest, EtaRule) {
  sched::Workload dense_w;
  dense_w.nnz = 10000;
  dense_w.num_rows = 10;  // 1000 nnz/row
  sched::Workload sparse_w;
  sparse_w.nnz = 100;
  sparse_w.num_rows = 100;  // 1 nnz/row
  const uint32_t v = 10000;
  const double eta = 0.01;  // threshold: 100 nnz/row
  EXPECT_EQ(SelectPrefetcherType(dense_w, v, eta), PrefetcherType::kFrequencyBased);
  EXPECT_EQ(SelectPrefetcherType(sparse_w, v, eta), PrefetcherType::kDegreeBased);
  sched::Workload empty;
  EXPECT_EQ(SelectPrefetcherType(empty, v, eta), PrefetcherType::kDegreeBased);
  EXPECT_STREQ(PrefetcherTypeName(PrefetcherType::kFrequencyBased), "frequency");
}

class WofpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph::RmatParams params;
    params.scale = 10;
    params.num_edges = 12000;
    params.a = 0.65;
    params.b = 0.15;
    params.c = 0.15;
    params.d = 0.05;
    a_ = CsdbMatrix::FromGraph(graph::GenerateRmat(params).value());
    ms_ = memsim::MemorySystem::CreateDefault();
    in_degrees_ = ComputeInDegrees(a_);
    full_.ranges.push_back(sched::RowRange{0, a_.num_rows()});
    sched::RefreshCounts(a_, &full_);
  }

  memsim::WorkerCtx Ctx(memsim::SimClock* clock) {
    memsim::WorkerCtx ctx;
    ctx.worker = 0;
    ctx.cpu_socket = 0;
    ctx.active_threads = 1;
    ctx.clock = clock;
    return ctx;
  }

  CsdbMatrix a_;
  std::unique_ptr<memsim::MemorySystem> ms_;
  std::vector<uint32_t> in_degrees_;
  sched::Workload full_;
};

TEST_F(WofpTest, InDegreesMatchColumnCounts) {
  uint64_t total = 0;
  for (uint32_t d : in_degrees_) total += d;
  EXPECT_EQ(total, a_.nnz());
  // Symmetric adjacency: in-degree == row degree.
  for (uint32_t r = 0; r < a_.num_rows(); ++r) {
    EXPECT_EQ(in_degrees_[r], a_.RowDegree(r));
  }
}

TEST_F(WofpTest, BuildCachesHotColumns) {
  WofpOptions opts;
  opts.sigma = 0.2;
  memsim::SimClock clock;
  auto ctx = Ctx(&clock);
  auto prefetcher = WofpPrefetcher::Build(a_, full_, in_degrees_, opts, ms_.get(),
                                          &ctx);
  ASSERT_NE(prefetcher, nullptr);
  EXPECT_GT(prefetcher->store().size(), 0u);
  EXPECT_GT(clock.seconds(), 0.0);  // build was charged
  // The hottest column (highest in-degree, i.e. CSDB row 0) must be cached.
  EXPECT_TRUE(prefetcher->Contains(0));
  // Hit ratio over the whole workload should be substantial on a skewed
  // graph: sigma=0.2 of nnz as capacity covers far more than 20% of touches.
  uint64_t hits = 0;
  for (graph::NodeId c : a_.col_list()) hits += prefetcher->Contains(c);
  EXPECT_GT(static_cast<double>(hits) / a_.nnz(), 0.3);
}

TEST_F(WofpTest, ReleasesDramReservationOnDestruction) {
  WofpOptions opts;
  opts.sigma = 0.1;
  const size_t before = ms_->UsedBytes(memsim::Tier::kDram, 0);
  {
    memsim::SimClock clock;
    auto ctx = Ctx(&clock);
    auto p = WofpPrefetcher::Build(a_, full_, in_degrees_, opts, ms_.get(), &ctx);
    EXPECT_GT(ms_->UsedBytes(memsim::Tier::kDram, 0), before);
  }
  EXPECT_EQ(ms_->UsedBytes(memsim::Tier::kDram, 0), before);
}

TEST_F(WofpTest, HalvesCapacityWhenDramFull) {
  // Fill DRAM almost completely; the build must degrade, not fail.
  const size_t cap = ms_->CapacityBytes(memsim::Tier::kDram);
  ASSERT_TRUE(ms_->Reserve({memsim::Tier::kDram, 0}, cap - 256).ok());
  WofpOptions opts;
  opts.sigma = 0.5;
  memsim::SimClock clock;
  auto ctx = Ctx(&clock);
  auto p = WofpPrefetcher::Build(a_, full_, in_degrees_, opts, ms_.get(), &ctx);
  ASSERT_NE(p, nullptr);
  EXPECT_LE(p->store().SimBytes(), 256u);
  ms_->Release({memsim::Tier::kDram, 0}, cap - 256);
}

TEST_F(WofpTest, FrequencyAndDegreeProducersDiffer) {
  WofpOptions freq_opts;
  freq_opts.eta = 0.0;  // everything frequency-based
  freq_opts.sigma = 0.05;
  WofpOptions deg_opts;
  deg_opts.eta = 1.0;  // everything degree-based
  deg_opts.sigma = 0.05;
  memsim::SimClock clock;
  auto ctx = Ctx(&clock);
  auto pf = WofpPrefetcher::Build(a_, full_, in_degrees_, freq_opts, ms_.get(), &ctx);
  auto pd = WofpPrefetcher::Build(a_, full_, in_degrees_, deg_opts, ms_.get(), &ctx);
  EXPECT_EQ(pf->type(), PrefetcherType::kFrequencyBased);
  EXPECT_EQ(pd->type(), PrefetcherType::kDegreeBased);
  // On a full symmetric workload both rank by (in-)degree-like scores, so the
  // stores overlap heavily but need not be identical.
  EXPECT_GT(pf->store().size(), 0u);
  EXPECT_GT(pd->store().size(), 0u);
}

TEST_F(WofpTest, CacheSetBuildsPerWorkerAndSpeedsUpSpmm) {
  sched::AllocatorOptions aopts;
  aopts.num_threads = 4;
  const sparse::SpmmPlan plan = sparse::SpmmPlan::Build(
      a_, sched::AllocatorKind::kEntropyAware, aopts, /*with_in_degrees=*/true);
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a_.num_cols(), 4, 3);
  linalg::DenseMatrix expected;
  ASSERT_TRUE(sparse::ReferenceSpmm(a_, b, &expected).ok());

  ThreadPool pool(4);
  linalg::DenseMatrix c(a_.num_rows(), 4);
  WofpOptions wopts;
  wopts.sigma = 0.15;
  WofpCacheSet cache_set(a_, plan, wopts, exec::Context(ms_.get()));
  const auto with = sparse::ParallelSpmm(a_, b, &c, plan,
                                         sparse::SpmmPlacements{}, exec::Context(ms_.get(), &pool),
                                         cache_set.Factory());
  EXPECT_LT(linalg::DenseMatrix::MaxAbsDiff(c, expected), 1e-4);
  for (size_t w = 0; w < 4; ++w) EXPECT_NE(cache_set.Get(w), nullptr);

  linalg::DenseMatrix c2(a_.num_rows(), 4);
  const auto without = sparse::ParallelSpmm(a_, b, &c2, plan.workloads(),
                                            sparse::SpmmPlacements{}, exec::Context(ms_.get(), &pool));
  // Fig. 14: WoFP reduces SpMM time (build overhead included).
  EXPECT_LT(with.phase_seconds, without.phase_seconds);

  // Plan reuse: a second SpMM through the same cache set reuses the built
  // stores (same pointers) yet pays the same simulated seconds — the build
  // charges are replayed per call.
  const WofpPrefetcher* first_worker0 = cache_set.Get(0);
  linalg::DenseMatrix c3(a_.num_rows(), 4);
  const auto again = sparse::ParallelSpmm(a_, b, &c3, plan,
                                          sparse::SpmmPlacements{}, exec::Context(ms_.get(), &pool),
                                          cache_set.Factory());
  EXPECT_EQ(cache_set.Get(0), first_worker0);
  EXPECT_EQ(again.phase_seconds, with.phase_seconds);
  for (int i = 0; i < sparse::kNumSpmmOps; ++i) {
    EXPECT_EQ(again.total_breakdown.seconds[i], with.total_breakdown.seconds[i]);
  }
}

}  // namespace
}  // namespace omega::prefetch
