// Durability tests: the checkpoint store's header-dancing torn-write
// detection, the snapshot layer's commit-group fallback, the replicated
// shared log's sequencer/replay/quorum contracts, and the engine-level
// crash matrix — a run killed at every phase boundary (and mid-checkpoint,
// leaving a torn final entry) must restore and finish with an embedding
// bitwise equal to an uninterrupted run, at 1, 2, and 8 threads.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "durable/checkpoint.h"
#include "durable/shared_log.h"
#include "graph/rmat.h"
#include "memsim/fault.h"
#include "memsim/memory_system.h"
#include "omega/engine.h"
#include "omega/report.h"

namespace omega {
namespace {

using durable::CheckpointOptions;
using durable::CheckpointSnapshot;
using durable::CheckpointStore;
using durable::ReplicatedLog;
using durable::SharedLogOptions;
using memsim::FaultPlan;
using memsim::MemOp;
using memsim::Pattern;
using memsim::Tier;

// ---------------------------------------------------------------------------
// Checkpoint store: header dancing, torn tails, corruption.
// ---------------------------------------------------------------------------

std::string PayloadString(const durable::LogEntry& e) {
  return std::string(e.payload.begin(), e.payload.end());
}

TEST(CheckpointStoreTest, AppendChargesBarriersAndScansInOrder) {
  auto ms = memsim::MemorySystem::CreateDefault();
  CheckpointStore store(ms.get(), CheckpointOptions{});
  const std::string a = "alpha", b = "beta";
  auto c1 = store.Append(1, a.data(), a.size());
  ASSERT_TRUE(c1.ok()) << c1.status().ToString();
  EXPECT_EQ(c1.value().entries, 1u);
  EXPECT_EQ(c1.value().barriers, 2u);  // payload barrier + header barrier
  EXPECT_GT(c1.value().seconds, 0.0);
  ASSERT_TRUE(store.Append(2, b.data(), b.size()).ok());
  EXPECT_EQ(ms->PersistBarriers(), 4u);
  EXPECT_EQ(store.entry_count(), 2u);

  const auto scan = store.Scan();
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.entries.size(), 2u);
  EXPECT_EQ(scan.entries[0].type, 1u);
  EXPECT_EQ(scan.entries[1].type, 2u);
  EXPECT_LT(scan.entries[0].stamp, scan.entries[1].stamp);
  EXPECT_EQ(PayloadString(scan.entries[0]), "alpha");
  EXPECT_EQ(PayloadString(scan.entries[1]), "beta");
}

TEST(CheckpointStoreTest, TornTailDetectedTruncatedNeverReplayed) {
  auto ms = memsim::MemorySystem::CreateDefault();
  CheckpointStore store(ms.get(), CheckpointOptions{});
  const std::string keep = "kept payload bytes", torn = "half-written bytes";
  ASSERT_TRUE(store.Append(1, keep.data(), keep.size()).ok());
  ASSERT_TRUE(store.AppendTorn(2, torn.data(), torn.size()).ok());

  // The torn entry fails its checksum: the valid prefix stops before it and
  // its bytes are never surfaced as an entry.
  auto scan = store.Scan();
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.entries.size(), 1u);
  EXPECT_EQ(PayloadString(scan.entries[0]), keep);

  // Truncation drops exactly the torn entry and the log is appendable again.
  EXPECT_EQ(store.TruncateToValidPrefix(), 1u);
  const std::string next = "post-crash append";
  ASSERT_TRUE(store.Append(3, next.data(), next.size()).ok());
  scan = store.Scan();
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.entries.size(), 2u);
  EXPECT_EQ(PayloadString(scan.entries[1]), next);
}

TEST(CheckpointStoreTest, CorruptChecksumStopsTheValidPrefix) {
  auto ms = memsim::MemorySystem::CreateDefault();
  CheckpointStore store(ms.get(), CheckpointOptions{});
  for (uint32_t t = 1; t <= 3; ++t) {
    const std::string payload = "entry " + std::to_string(t);
    ASSERT_TRUE(store.Append(t, payload.data(), payload.size()).ok());
  }
  store.CorruptTailChecksum();
  const auto scan = store.Scan();
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.entries.size(), 2u);  // the silently-corrupt tail is refused
  EXPECT_EQ(store.TruncateToValidPrefix(), 1u);
  EXPECT_FALSE(store.Scan().torn_tail);
}

TEST(CheckpointStoreTest, ChargedScanCostsAndFileRoundtrip) {
  auto ms = memsim::MemorySystem::CreateDefault();
  CheckpointStore store(ms.get(), CheckpointOptions{});
  const std::string payload(4096, 'x');
  ASSERT_TRUE(store.Append(7, payload.data(), payload.size()).ok());

  durable::CkptCosts costs;
  const auto scan = store.ChargedScan(&costs);
  ASSERT_EQ(scan.entries.size(), 1u);
  EXPECT_GT(costs.seconds, 0.0);
  EXPECT_GE(costs.bytes, payload.size());

  const std::string path = ::testing::TempDir() + "/ckpt_image.bin";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto ms2 = memsim::MemorySystem::CreateDefault();
  CheckpointStore loaded(ms2.get(), CheckpointOptions{});
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  const auto scan2 = loaded.Scan();
  ASSERT_EQ(scan2.entries.size(), 1u);
  EXPECT_EQ(PayloadString(scan2.entries[0]), payload);
}

// ---------------------------------------------------------------------------
// Snapshot layer: commit groups and mid-checkpoint crashes.
// ---------------------------------------------------------------------------

linalg::DenseMatrix TestMatrix(size_t rows, size_t cols, float base) {
  linalg::DenseMatrix m(rows, cols);
  for (size_t c = 0; c < cols; ++c) {
    for (size_t r = 0; r < rows; ++r) m.At(r, c) = base + r * 0.25f + c;
  }
  return m;
}

TEST(SnapshotTest, WriteReadRoundtripBitExact) {
  auto ms = memsim::MemorySystem::CreateDefault();
  CheckpointStore store(ms.get(), CheckpointOptions{});
  CheckpointSnapshot snap;
  snap.stage = 3;
  snap.next_term = 5;
  snap.matrices.emplace_back("t_cur", TestMatrix(17, 4, 1.5f));
  snap.words = {42, 0xDEADBEEFull};
  ASSERT_TRUE(durable::WriteSnapshot(&store, snap).ok());

  auto read = durable::ReadLastSnapshot(&store, nullptr);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().stage, 3u);
  EXPECT_EQ(read.value().next_term, 5u);
  EXPECT_EQ(read.value().words, snap.words);
  ASSERT_EQ(read.value().matrices.size(), 1u);
  EXPECT_EQ(read.value().matrices[0].first, "t_cur");
  const auto& m = read.value().matrices[0].second;
  ASSERT_EQ(m.rows(), 17u);
  ASSERT_EQ(m.cols(), 4u);
  EXPECT_EQ(std::memcmp(m.data(), snap.matrices[0].second.data(), m.bytes()),
            0);
}

TEST(SnapshotTest, TornSnapshotFallsBackToPreviousCommit) {
  auto ms = memsim::MemorySystem::CreateDefault();
  CheckpointStore store(ms.get(), CheckpointOptions{});
  CheckpointSnapshot first;
  first.stage = 1;
  first.words = {1, 2, 3};
  ASSERT_TRUE(durable::WriteSnapshot(&store, first).ok());

  CheckpointSnapshot second;
  second.stage = 2;
  second.words = {9, 9, 9};
  second.matrices.emplace_back("r0", TestMatrix(8, 2, 0.0f));
  ASSERT_TRUE(durable::WriteSnapshotTorn(&store, second).ok());

  // The crashed group has no commit marker and a torn final entry: restore
  // must fall back to the first snapshot, never replay the torn one.
  auto read = durable::ReadLastSnapshot(&store, nullptr);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().stage, 1u);
  EXPECT_EQ(read.value().words, first.words);

  // After truncating the crash debris, a fresh snapshot wins again.
  store.TruncateToValidPrefix();
  CheckpointSnapshot third;
  third.stage = 4;
  third.words = {7, 7, 7};
  ASSERT_TRUE(durable::WriteSnapshot(&store, third).ok());
  read = durable::ReadLastSnapshot(&store, nullptr);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().stage, 4u);
}

TEST(SnapshotTest, TornOnlySnapshotIsNotFound) {
  auto ms = memsim::MemorySystem::CreateDefault();
  CheckpointStore store(ms.get(), CheckpointOptions{});
  CheckpointSnapshot snap;
  snap.stage = 2;
  snap.words = {1, 2, 3};
  ASSERT_TRUE(durable::WriteSnapshotTorn(&store, snap).ok());
  auto read = durable::ReadLastSnapshot(&store, nullptr);
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Replicated shared log: sequencer, replay idempotence, quorum.
// ---------------------------------------------------------------------------

TEST(SharedLogTest, DeterministicScheduleIsAPermutation) {
  const auto slots = durable::DeterministicSchedule(7, 4, 8);
  ASSERT_EQ(slots.size(), 32u);
  std::vector<int> per_machine(4, 0);
  for (int m : slots) per_machine[m]++;
  for (int c : per_machine) EXPECT_EQ(c, 8);
  EXPECT_EQ(durable::DeterministicSchedule(7, 4, 8), slots);
  EXPECT_NE(durable::DeterministicSchedule(8, 4, 8), slots);
}

TEST(SharedLogTest, SequencerGapFreeUnderConcurrentAppends) {
  auto ms = memsim::MemorySystem::CreateDefault();
  ReplicatedLog log(ms.get(), SharedLogOptions{});
  const auto slots = durable::DeterministicSchedule(11, 4, 16);
  std::vector<uint64_t> positions(slots.size());
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= slots.size()) return;
        auto res = log.Append(slots[i], /*bytes=*/1024);
        ASSERT_TRUE(res.ok()) << res.status().ToString();
        positions[i] = res.value().position;
      }
    });
  }
  for (auto& w : workers) w.join();

  // Positions are gap-free: every value in [0, N) assigned exactly once.
  std::vector<bool> seen(slots.size(), false);
  for (uint64_t p : positions) {
    ASSERT_LT(p, slots.size());
    EXPECT_FALSE(seen[p]) << "position " << p << " assigned twice";
    seen[p] = true;
  }
  EXPECT_EQ(log.Tail(), slots.size());
  // The record at each machine's position carries that machine's id.
  const auto records = log.Records();
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(records[positions[i]].machine, slots[i]);
  }
}

TEST(SharedLogTest, SerialScheduleByteIdenticalAcrossRuns) {
  const auto slots = durable::DeterministicSchedule(3, 3, 12);
  auto run = [&](std::vector<durable::LogRecord>* records, uint64_t* digest) {
    auto ms = memsim::MemorySystem::CreateDefault();
    ReplicatedLog log(ms.get(), SharedLogOptions{});
    for (size_t i = 0; i < slots.size(); ++i) {
      ASSERT_TRUE(log.Append(slots[i], 512 + i).ok());
    }
    log.Replay(0, log.Tail());
    *records = log.Records();
    *digest = log.Digest(0);
  };
  std::vector<durable::LogRecord> ra, rb;
  uint64_t da = 0, db = 0;
  run(&ra, &da);
  run(&rb, &db);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].position, rb[i].position);
    EXPECT_EQ(ra[i].machine, rb[i].machine);
    EXPECT_EQ(ra[i].bytes, rb[i].bytes);
  }
  EXPECT_EQ(da, db);
  EXPECT_NE(da, 0u);
}

TEST(SharedLogTest, ReplayIsIdempotentAndPrefixComposable) {
  auto fill = [](ReplicatedLog* log) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(log->Append(i % 3, 256 * (i + 1)).ok());
    }
  };
  auto ms1 = memsim::MemorySystem::CreateDefault();
  ReplicatedLog once(ms1.get(), SharedLogOptions{});
  fill(&once);
  const auto full = once.Replay(1, once.Tail());
  EXPECT_EQ(full.applied, 10u);
  EXPECT_GT(full.seconds, 0.0);
  const uint64_t digest_once = once.Digest(1);

  // Replaying the same prefix twice applies it once: zero new records, zero
  // charged seconds, identical digest.
  const auto again = once.Replay(1, once.Tail());
  EXPECT_EQ(again.applied, 0u);
  EXPECT_EQ(again.skipped, 10u);
  EXPECT_EQ(again.seconds, 0.0);
  EXPECT_EQ(once.Digest(1), digest_once);

  // Replay in two stages lands on the same digest as one full replay.
  auto ms2 = memsim::MemorySystem::CreateDefault();
  ReplicatedLog staged(ms2.get(), SharedLogOptions{});
  fill(&staged);
  staged.Replay(1, 4);
  staged.Replay(1, staged.Tail());
  EXPECT_EQ(staged.Digest(1), digest_once);
  EXPECT_EQ(staged.Watermark(1), 10u);
}

TEST(SharedLogTest, AdvanceCheckpointSkipsCoveredRecords) {
  auto ms = memsim::MemorySystem::CreateDefault();
  ReplicatedLog log(ms.get(), SharedLogOptions{});
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(log.Append(0, 128).ok());
  log.AdvanceCheckpoint(2, 5);
  EXPECT_EQ(log.Watermark(2), 5u);
  const auto replay = log.Replay(2, log.Tail());
  EXPECT_EQ(replay.applied, 3u);  // only the records past the checkpoint
  EXPECT_EQ(replay.skipped, 5u);

  // Covered-then-replayed equals replayed-straight-through (same digest).
  auto ms2 = memsim::MemorySystem::CreateDefault();
  ReplicatedLog plain(ms2.get(), SharedLogOptions{});
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(plain.Append(0, 128).ok());
  plain.Replay(2, plain.Tail());
  EXPECT_EQ(log.Digest(2), plain.Digest(2));
}

FaultPlan NetTimeoutPlan(double rate, uint64_t seed = 42) {
  FaultPlan plan;
  plan.enabled = true;
  plan.seed = seed;
  plan.at(Tier::kNetwork, MemOp::kWrite, Pattern::kSequential).timeout = rate;
  return plan;
}

TEST(SharedLogTest, QuorumLossSurfacesIOError) {
  auto ms = memsim::MemorySystem::CreateDefault();
  ms->SetFaultPlan(NetTimeoutPlan(1.0));
  ReplicatedLog log(ms.get(), SharedLogOptions{});
  auto res = log.Append(0, 4096);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsIOError());
  const auto f = ms->Faults();
  EXPECT_GT(f.surfaced, 0u);
  EXPECT_TRUE(f.Accounted());
  // The failed position is consumed (a CORFU hole), keeping replay indexed.
  EXPECT_EQ(log.Tail(), 1u);
}

TEST(SharedLogTest, PartialReplicaLossKeepsAccountingIdentity) {
  auto run = [](memsim::FaultCounters* out) {
    auto ms = memsim::MemorySystem::CreateDefault();
    // 0.8 per attempt → ~0.41 per replica after bounded retries: some appends
    // lose a replica but keep the quorum (degraded), some lose the quorum.
    ms->SetFaultPlan(NetTimeoutPlan(0.8, /*seed=*/9));
    ReplicatedLog log(ms.get(), SharedLogOptions{});
    int ok_count = 0;
    for (int i = 0; i < 64; ++i) {
      if (log.Append(i % 4, 2048).ok()) ++ok_count;
    }
    EXPECT_GT(ok_count, 0);
    EXPECT_LT(ok_count, 64);
    *out = ms->Faults();
  };
  memsim::FaultCounters a, b;
  run(&a);
  run(&b);
  EXPECT_GT(a.timeouts, 0u);
  EXPECT_GT(a.degraded, 0u);  // lost replicas under a surviving quorum
  EXPECT_TRUE(a.Accounted());
  EXPECT_EQ(a, b);  // same seed, same fault report
}

// ---------------------------------------------------------------------------
// Engine crash matrix: kill at every phase boundary and mid-checkpoint,
// restore, finish, and land on bitwise-identical embeddings.
// ---------------------------------------------------------------------------

graph::Graph SmallGraph() {
  graph::RmatParams params;
  params.scale = 10;
  params.num_edges = 1 << 13;
  params.seed = 5;
  return graph::GenerateRmat(params).value();
}

engine::EngineOptions BaseOptions(int threads) {
  engine::EngineOptions options;
  options.system = engine::SystemKind::kOmega;
  options.num_threads = threads;
  options.prone.dim = 16;
  options.prone.oversample = 4;
  options.prone.chebyshev_order = 4;
  return options;
}

engine::RunReport MustRun(const graph::Graph& g, memsim::MemorySystem* ms,
                          const engine::EngineOptions& options, int threads) {
  ThreadPool pool(static_cast<size_t>(threads));
  auto report = engine::RunEmbedding(
      g, "rmat", options, exec::Context(ms, &pool, threads));
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? std::move(report).value() : engine::RunReport{};
}

class CrashMatrixTest : public ::testing::Test {
 protected:
  const graph::Graph g_ = SmallGraph();
};

TEST_F(CrashMatrixTest, KillRestoreFinishBitwiseIdentical) {
  // "term.1" and "term.3" are cadence checkpoints inside the Chebyshev
  // recurrence (checkpoint_every = 1); the others are stage boundaries.
  const std::vector<std::string> sites = {"read", "factorize", "term.1",
                                          "term.3", "embed"};
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(std::to_string(threads) + " threads");
    auto baseline_ms = memsim::MemorySystem::CreateDefault();
    const engine::RunReport baseline =
        MustRun(g_, baseline_ms.get(), BaseOptions(threads), threads);
    ASSERT_GT(baseline.embedding.bytes(), 0u);

    for (const std::string& site : sites) {
      for (bool torn : {false, true}) {
        SCOPED_TRACE(site + (torn ? " (torn checkpoint)" : ""));
        auto ms = memsim::MemorySystem::CreateDefault();
        CheckpointStore store(ms.get(), CheckpointOptions{});

        engine::EngineOptions crash = BaseOptions(threads);
        crash.durability.store = &store;
        crash.durability.checkpoint_every = 1;
        crash.durability.crash_after_phase = site;
        crash.durability.crash_tear_checkpoint = torn;
        {
          ThreadPool pool(static_cast<size_t>(threads));
          auto killed = engine::RunEmbedding(
              g_, "rmat", crash, exec::Context(ms.get(), &pool, threads));
          ASSERT_FALSE(killed.ok()) << "the kill site never fired";
          EXPECT_TRUE(durable::IsKilledError(killed.status()))
              << killed.status().ToString();
        }

        engine::EngineOptions resume = BaseOptions(threads);
        resume.durability.store = &store;
        resume.durability.checkpoint_every = 1;
        resume.durability.restore = true;
        const engine::RunReport resumed =
            MustRun(g_, ms.get(), resume, threads);
        ASSERT_EQ(resumed.embedding.bytes(), baseline.embedding.bytes());
        EXPECT_EQ(std::memcmp(resumed.embedding.data(),
                              baseline.embedding.data(),
                              baseline.embedding.bytes()),
                  0)
            << "restored run's embedding drifted from the uninterrupted run";
        // The restore scan is a charged PM read of the surviving image.
        EXPECT_GT(resumed.recovery_seconds, 0.0);
        // Resuming from the final "embed" snapshot re-writes nothing; every
        // other resume point checkpoints the stages it still runs.
        if (site == "embed" && !torn) {
          EXPECT_EQ(resumed.ckpt_seconds, 0.0);
        } else {
          EXPECT_GT(resumed.ckpt_seconds, 0.0);
        }
        EXPECT_GT(resumed.total_seconds, 0.0);
      }
    }
  }
}

TEST_F(CrashMatrixTest, KillBetweenCadenceCheckpointsReplaysFromLastCommit) {
  // checkpoint_every = 2 checkpoints terms 2 and 4; the kill at term.3 has no
  // checkpoint of its own, so restore falls back to the term-2 snapshot and
  // recomputes the lost term.
  const int threads = 2;
  auto baseline_ms = memsim::MemorySystem::CreateDefault();
  const engine::RunReport baseline =
      MustRun(g_, baseline_ms.get(), BaseOptions(threads), threads);

  auto ms = memsim::MemorySystem::CreateDefault();
  CheckpointStore store(ms.get(), CheckpointOptions{});
  engine::EngineOptions crash = BaseOptions(threads);
  crash.durability.store = &store;
  crash.durability.checkpoint_every = 2;
  crash.durability.crash_after_phase = "term.3";
  {
    ThreadPool pool(threads);
    auto killed = engine::RunEmbedding(g_, "rmat", crash,
                                       exec::Context(ms.get(), &pool, threads));
    ASSERT_FALSE(killed.ok());
    EXPECT_TRUE(durable::IsKilledError(killed.status()));
  }

  engine::EngineOptions resume = BaseOptions(threads);
  resume.durability.store = &store;
  resume.durability.checkpoint_every = 2;
  resume.durability.restore = true;
  const engine::RunReport resumed = MustRun(g_, ms.get(), resume, threads);
  ASSERT_EQ(resumed.embedding.bytes(), baseline.embedding.bytes());
  EXPECT_EQ(std::memcmp(resumed.embedding.data(), baseline.embedding.data(),
                        baseline.embedding.bytes()),
            0);
  EXPECT_GT(resumed.recovery_seconds, 0.0);
}

TEST_F(CrashMatrixTest, RestoreWithEmptyStoreRunsFromScratch) {
  const int threads = 2;
  auto baseline_ms = memsim::MemorySystem::CreateDefault();
  const engine::RunReport baseline =
      MustRun(g_, baseline_ms.get(), BaseOptions(threads), threads);

  auto ms = memsim::MemorySystem::CreateDefault();
  CheckpointStore store(ms.get(), CheckpointOptions{});
  engine::EngineOptions resume = BaseOptions(threads);
  resume.durability.store = &store;
  resume.durability.checkpoint_every = 1;
  resume.durability.restore = true;  // nothing committed: full re-run
  const engine::RunReport resumed = MustRun(g_, ms.get(), resume, threads);
  ASSERT_EQ(resumed.embedding.bytes(), baseline.embedding.bytes());
  EXPECT_EQ(std::memcmp(resumed.embedding.data(), baseline.embedding.data(),
                        baseline.embedding.bytes()),
            0);
}

TEST_F(CrashMatrixTest, CheckpointPhasesLandInTraceAndJson) {
  const int threads = 2;
  auto ms = memsim::MemorySystem::CreateDefault();
  CheckpointStore store(ms.get(), CheckpointOptions{});
  engine::EngineOptions options = BaseOptions(threads);
  options.durability.store = &store;
  options.durability.checkpoint_every = 1;
  const engine::RunReport report = MustRun(g_, ms.get(), options, threads);

  bool saw_ckpt_write = false;
  for (const auto& phase : report.phases) {
    if (phase.name == "ckpt.write") {
      saw_ckpt_write = true;
      EXPECT_GT(phase.ckpt_entries, 0u);
      EXPECT_GT(phase.ckpt_bytes, 0u);
      EXPECT_GT(phase.persist_barriers, 0u);
    }
  }
  EXPECT_TRUE(saw_ckpt_write);
  EXPECT_GT(report.ckpt_seconds, 0.0);

  const std::string json = engine::ReportToJson(report);
  EXPECT_NE(json.find("\"ckpt_seconds\": "), std::string::npos);
  EXPECT_NE(json.find("\"ckpt\": {\"entries\": "), std::string::npos);

  // Durability off: the conditional keys stay out of the report entirely.
  auto plain_ms = memsim::MemorySystem::CreateDefault();
  const engine::RunReport plain =
      MustRun(g_, plain_ms.get(), BaseOptions(threads), threads);
  const std::string plain_json = engine::ReportToJson(plain);
  EXPECT_EQ(plain_json.find("\"ckpt_seconds\": "), std::string::npos);
  EXPECT_EQ(plain_json.find("\"ckpt\": {"), std::string::npos);
}

}  // namespace
}  // namespace omega
