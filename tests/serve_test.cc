// Tests for the serving layer: Zipf sampling, serving kernels, the hot
// cache, and the batching scheduler's determinism and admission control.

#include <gtest/gtest.h>

#include <cstring>
#include <future>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "linalg/random_matrix.h"
#include "memsim/sim_clock.h"
#include "serve/hot_cache.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "serve/zipf.h"
#include "sparse/spmm_kernels.h"

namespace omega::serve {
namespace {

TEST(ZipfTest, DeterministicForFixedSeed) {
  ZipfGenerator a(1000, 0.99, 7);
  ZipfGenerator b(1000, 0.99, 7);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t rank = a.Next();
    EXPECT_EQ(rank, b.Next());
    EXPECT_LT(rank, 1000u);
  }
  // A different seed draws a different stream.
  ZipfGenerator c(1000, 0.99, 8);
  int diff = 0;
  ZipfGenerator a2(1000, 0.99, 7);
  for (int i = 0; i < 100; ++i) diff += a2.Next() != c.Next();
  EXPECT_GT(diff, 0);
}

TEST(ZipfTest, SkewConcentratesMassOnHotRanks) {
  const int kDraws = 20000;
  auto head_share = [&](double skew) {
    ZipfGenerator z(10000, skew, 11);
    int head = 0;
    for (int i = 0; i < kDraws; ++i) head += z.Next() < 10;
    return static_cast<double>(head) / kDraws;
  };
  const double mild = head_share(0.6);
  const double steep = head_share(1.2);
  // Under the classic law the top-10 of 10k ranks absorb a large share; the
  // steeper exponent must absorb strictly more than the mild one.
  EXPECT_GT(steep, mild);
  EXPECT_GT(steep, 0.4);
  EXPECT_GT(mild, 0.02);
}

TEST(ZipfTest, RankPermutationIsPermutation) {
  const std::vector<uint32_t> perm = RankPermutation(257, 3);
  ASSERT_EQ(perm.size(), 257u);
  std::set<uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
  EXPECT_EQ(perm, RankPermutation(257, 3));
  EXPECT_NE(perm, RankPermutation(257, 4));
}

TEST(ServeKernelsTest, GatherRowsMatchesScalarBitwise) {
  const linalg::DenseMatrix e = linalg::GaussianMatrix(203, 19, 5);
  Rng rng(9);
  std::vector<uint32_t> keys(57);
  for (auto& k : keys) k = static_cast<uint32_t>(rng.NextBounded(e.rows()));

  linalg::DenseMatrix simd(e.cols(), keys.size());
  linalg::DenseMatrix scalar(e.cols(), keys.size());
  sparse::kernels::GatherRows(e, keys.data(), keys.size(), &simd);
  sparse::kernels::GatherRowsScalar(e, keys.data(), keys.size(), &scalar);
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = 0; j < e.cols(); ++j) {
      EXPECT_EQ(simd.At(j, i), scalar.At(j, i));
      EXPECT_EQ(scalar.At(j, i), e.At(keys[i], j));
    }
  }
}

TEST(ServeKernelsTest, ScoreRowsMatchesScalarBitwise) {
  const linalg::DenseMatrix e = linalg::GaussianMatrix(301, 23, 6);
  const linalg::DenseMatrix q = linalg::GaussianMatrix(23, 1, 7);
  std::vector<float> simd(e.rows());
  std::vector<float> scalar(e.rows());
  sparse::kernels::ScoreRows(e, q.ColData(0), 0,
                             static_cast<uint32_t>(e.rows()), simd.data());
  sparse::kernels::ScoreRowsScalar(
      e, q.ColData(0), 0, static_cast<uint32_t>(e.rows()), scalar.data());
  for (size_t r = 0; r < e.rows(); ++r) {
    uint32_t sb, cb;
    std::memcpy(&sb, &simd[r], sizeof(sb));
    std::memcpy(&cb, &scalar[r], sizeof(cb));
    EXPECT_EQ(sb, cb) << "row " << r;
  }
}

// One run of a fixed query set through a server configuration; results are
// returned in submission order.
std::vector<QueryResult> ServeAll(const linalg::DenseMatrix& embedding,
                                  const std::vector<Query>& queries,
                                  int workers, size_t max_batch,
                                  bool batched) {
  auto ms = memsim::MemorySystem::CreateDefault();
  ServerOptions options;
  options.worker_threads = workers;
  options.max_batch = max_batch;
  options.batched = batched;
  options.queue_capacity = queries.size() + 1;
  options.batch_deadline_us = 50.0;
  const exec::Context ctx(ms.get(), nullptr, workers);
  EmbeddingServer server(embedding, options, ctx);

  // Queue everything before the workers start so batches actually fill.
  std::vector<std::future<QueryResult>> futures;
  for (const Query& q : queries) {
    auto submitted = server.Submit(q);
    EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
    futures.push_back(std::move(submitted).value());
  }
  EXPECT_TRUE(server.Start().ok());
  std::vector<QueryResult> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  server.Stop();
  return results;
}

TEST(EmbeddingServerTest, ResultsBitIdenticalAcrossThreadsAndBatchSizes) {
  const linalg::DenseMatrix embedding = linalg::GaussianMatrix(512, 16, 21);
  Rng rng(13);
  std::vector<Query> queries;
  for (int i = 0; i < 300; ++i) {
    Query q;
    q.key = static_cast<uint32_t>(rng.NextBounded(embedding.rows()));
    q.kind = rng.NextDouble() < 0.7 ? QueryKind::kTopK : QueryKind::kLookup;
    q.k = 8;
    queries.push_back(q);
  }

  const std::vector<QueryResult> base =
      ServeAll(embedding, queries, /*workers=*/1, /*max_batch=*/1,
               /*batched=*/false);
  const std::vector<QueryResult> two =
      ServeAll(embedding, queries, /*workers=*/2, /*max_batch=*/8,
               /*batched=*/true);
  const std::vector<QueryResult> eight =
      ServeAll(embedding, queries, /*workers=*/8, /*max_batch=*/32,
               /*batched=*/true);

  for (const auto* other : {&two, &eight}) {
    ASSERT_EQ(base.size(), other->size());
    for (size_t i = 0; i < base.size(); ++i) {
      const QueryResult& a = base[i];
      const QueryResult& b = (*other)[i];
      EXPECT_EQ(a.key, b.key);
      ASSERT_EQ(a.embedding.size(), b.embedding.size());
      for (size_t j = 0; j < a.embedding.size(); ++j) {
        uint32_t ab, bb;
        std::memcpy(&ab, &a.embedding[j], sizeof(ab));
        std::memcpy(&bb, &b.embedding[j], sizeof(bb));
        EXPECT_EQ(ab, bb);
      }
      ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
      for (size_t j = 0; j < a.neighbors.size(); ++j) {
        EXPECT_EQ(a.neighbors[j].id, b.neighbors[j].id);
        uint32_t ab, bb;
        std::memcpy(&ab, &a.neighbors[j].score, sizeof(ab));
        std::memcpy(&bb, &b.neighbors[j].score, sizeof(bb));
        EXPECT_EQ(ab, bb) << "query " << i << " neighbor " << j;
      }
    }
  }
}

TEST(EmbeddingServerTest, TopKExcludesSelfAndRanksDeterministically) {
  const linalg::DenseMatrix embedding = linalg::GaussianMatrix(64, 8, 3);
  std::vector<Query> queries(1);
  queries[0].kind = QueryKind::kTopK;
  queries[0].key = 5;
  queries[0].k = 64;  // more than available: returns all but self
  const auto results = ServeAll(embedding, queries, 1, 4, true);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_EQ(results[0].neighbors.size(), 63u);
  std::set<uint32_t> ids;
  for (const ScoredId& s : results[0].neighbors) {
    EXPECT_NE(s.id, 5u);
    ids.insert(s.id);
  }
  EXPECT_EQ(ids.size(), 63u);
  for (size_t j = 1; j < results[0].neighbors.size(); ++j) {
    EXPECT_TRUE(ScoredBetter(results[0].neighbors[j - 1],
                             results[0].neighbors[j]));
  }
}

TEST(EmbeddingServerTest, AdmissionControlRejectsWhenQueueFull) {
  const linalg::DenseMatrix embedding = linalg::GaussianMatrix(32, 4, 2);
  auto ms = memsim::MemorySystem::CreateDefault();
  ServerOptions options;
  options.worker_threads = 1;
  options.queue_capacity = 4;
  const exec::Context ctx(ms.get(), nullptr, 1);
  EmbeddingServer server(embedding, options, ctx);

  Query q;
  q.kind = QueryKind::kLookup;
  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 4; ++i) {
    auto submitted = server.Submit(q);
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  // The fifth submit must reject immediately instead of blocking.
  auto rejected = server.Submit(q);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsCapacityExceeded());

  Query bad;
  bad.key = 999;
  EXPECT_TRUE(server.Submit(bad).status().IsInvalidArgument());

  ASSERT_TRUE(server.Start().ok());
  for (auto& f : futures) f.get();  // queued work drains once started
  server.Stop();
  const EmbeddingServer::Stats stats = server.GetStats();
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 4u);
}

// Fixed Zipf key trace fetched through a HotCache at a given budget; returns
// the hit rate.
double HitRateAtBudget(size_t capacity_bytes, double hot_fraction) {
  auto ms = memsim::MemorySystem::CreateDefault();
  const uint32_t kUniverse = 4096;
  const size_t kVecBytes = 128;
  HotCacheOptions options;
  options.capacity_bytes = capacity_bytes;
  options.hot_fraction = hot_fraction;
  HotCache cache(ms.get(), kVecBytes, kUniverse, options);

  const std::vector<uint32_t> perm = RankPermutation(kUniverse, 19);
  std::vector<prefetch::ScoredKey> popularity;
  for (uint32_t r = 0; r < kUniverse; ++r) {
    popularity.push_back({perm[r], kUniverse - r});
  }
  memsim::SimClock clock;
  memsim::WorkerCtx ctx;
  ctx.clock = &clock;
  cache.WarmHotSet(&ctx, popularity);

  ZipfGenerator zipf(kUniverse, 0.99, 23);
  for (int i = 0; i < 20000; ++i) {
    const uint32_t key = perm[zipf.Next()];
    cache.FetchKeys(&ctx, &key, 1, /*grouped=*/false);
  }
  return cache.GetStats().HitRate();
}

TEST(HotCacheTest, HitRateMonotoneInCacheBudget) {
  // Same trace, growing DRAM budget: more budget can only raise the hit rate
  // (LRU stack property; the pinned hot set only grows with the budget).
  for (const double hot_fraction : {0.0, 1.0}) {
    double prev = -1.0;
    for (const size_t kb : {16, 64, 256, 1024}) {
      const double rate = HitRateAtBudget(kb * 1024, hot_fraction);
      EXPECT_GE(rate, prev) << "budget " << kb << "KB hot " << hot_fraction;
      prev = rate;
    }
    EXPECT_GT(prev, 0.5);  // the largest budget caches most of the universe
  }
}

TEST(HotCacheTest, HotSetSurvivesLruChurn) {
  auto ms = memsim::MemorySystem::CreateDefault();
  const uint32_t kUniverse = 2048;
  const size_t kVecBytes = 256;
  HotCacheOptions options;
  options.capacity_bytes = 64 * 1024;  // 256 frames: 128 hot + 128 LRU
  options.hot_fraction = 0.5;
  HotCache cache(ms.get(), kVecBytes, kUniverse, options);

  std::vector<prefetch::ScoredKey> popularity;
  for (uint32_t k = 0; k < kUniverse; ++k) {
    popularity.push_back({k, kUniverse - k});
  }
  memsim::SimClock clock;
  memsim::WorkerCtx ctx;
  ctx.clock = &clock;
  cache.WarmHotSet(&ctx, popularity);
  const size_t hot_keys = cache.GetStats().hot_keys;
  ASSERT_GT(hot_keys, 0u);
  ASSERT_TRUE(cache.IsHot(0));

  // Churn the LRU region with cold keys only.
  for (uint32_t pass = 0; pass < 4; ++pass) {
    for (uint32_t key = static_cast<uint32_t>(hot_keys); key < kUniverse;
         ++key) {
      cache.FetchKeys(&ctx, &key, 1, /*grouped=*/false);
    }
  }
  EXPECT_GT(cache.GetStats().evictions, 0u);

  // Every hot key still hits — pinned frames outlive any amount of churn.
  const HotCache::Stats before = cache.GetStats();
  for (uint32_t key = 0; key < static_cast<uint32_t>(hot_keys); ++key) {
    cache.FetchKeys(&ctx, &key, 1, /*grouped=*/false);
  }
  const HotCache::Stats delta = cache.GetStats() - before;
  EXPECT_EQ(delta.hits, hot_keys);
  EXPECT_EQ(delta.misses, 0u);
}

TEST(ServeLoadTest, FlakyNetServingKeepsFaultAccountingIdentity) {
  const linalg::DenseMatrix embedding = linalg::GaussianMatrix(1024, 8, 31);
  auto ms = memsim::MemorySystem::CreateDefault();
  auto plan = memsim::FaultPlanFromProfile("flaky-net:3");
  ASSERT_TRUE(plan.ok());
  ms->SetFaultPlan(plan.value());

  ServerOptions options;
  options.worker_threads = 2;
  options.cache.capacity_bytes = 16 * 1024;
  options.cache.cold_home = {memsim::Tier::kNetwork, 0};
  options.cache.replica_home = {memsim::Tier::kSsd, 0};
  const exec::Context ctx(ms.get(), nullptr, 2);
  EmbeddingServer server(embedding, options, ctx);
  std::vector<prefetch::ScoredKey> popularity;
  for (uint32_t k = 0; k < 1024; ++k) popularity.push_back({k, 1024 - k});
  server.WarmHotSet(popularity);
  ASSERT_TRUE(server.Start().ok());

  LoadgenOptions load;
  load.clients = 4;
  load.requests_per_client = 100;
  const std::vector<uint32_t> rank_to_key = RankPermutation(1024, 5);
  const LoadReport report = RunClosedLoop(&server, rank_to_key, load);
  server.Stop();

  // Every request completed despite the timeouts...
  EXPECT_EQ(report.completed, 400u);
  // ...faults actually fired against the network cold tier...
  const memsim::FaultCounters faults = ms->Faults();
  EXPECT_GT(faults.InjectedTotal(), 0u);
  // ...and every one was retried, degraded to the replica, or surfaced.
  EXPECT_TRUE(faults.Accounted());
  EXPECT_EQ(faults.surfaced, 0u);  // serving never fails a request on faults
}

TEST(ServeLoadTest, ClosedLoopReportsConsistentCounts) {
  const linalg::DenseMatrix embedding = linalg::GaussianMatrix(256, 8, 17);
  auto ms = memsim::MemorySystem::CreateDefault();
  ServerOptions options;
  options.worker_threads = 2;
  const exec::Context ctx(ms.get(), nullptr, 2);
  EmbeddingServer server(embedding, options, ctx);
  ASSERT_TRUE(server.Start().ok());

  LoadgenOptions load;
  load.clients = 3;
  load.requests_per_client = 40;
  const LoadReport report =
      RunClosedLoop(&server, RankPermutation(256, 2), load);
  server.Stop();

  EXPECT_EQ(report.completed, 120u);
  EXPECT_EQ(report.server.completed, 120u);
  EXPECT_GT(report.host_qps, 0.0);
  EXPECT_GT(report.sim_qps, 0.0);
  EXPECT_GE(report.p99_us, report.p50_us);
  EXPECT_GT(report.sim_seconds, 0.0);
  EXPECT_EQ(report.cache_delta.hits + report.cache_delta.misses,
            report.server.cache.hits + report.server.cache.misses);
  EXPECT_GT(report.traffic_delta.TotalBytes(), 0u);
}

}  // namespace
}  // namespace omega::serve
