// Embedding-quality check — the paper's §IV-B claim: "since OMeGa uses ProNE
// as the model prototype and provides system support on heterogeneous
// memory, it maintains the effectiveness of graph representation of ProNE."
//
// On a planted-partition graph (ground-truth communities) and on a dataset
// analogue, OMeGa's embeddings are compared against the ProNE-DRAM baseline
// (must be numerically equivalent) and the DeepWalk family (the slower
// alternative the paper's introduction benchmarks ProNE against).

#include "bench_util.h"
#include "common/string_util.h"
#include "embed/classification.h"
#include "embed/quality.h"
#include "embed/random_walk.h"
#include "graph/community.h"

int main() {
  using namespace omega;
  bench::Env env = bench::MakeEnv(16);
  engine::PrintExperimentHeader(
      "Quality", "embedding effectiveness: OMeGa == ProNE, vs DeepWalk");

  // Planted-partition graph with ground-truth labels.
  graph::SbmParams sbm_params;
  sbm_params.nodes_per_block = 128;
  sbm_params.blocks = 4;
  sbm_params.p_in = 0.12;
  sbm_params.p_out = 0.005;
  auto sbm = graph::GenerateSbm(sbm_params).value();
  const graph::Graph& g = sbm.graph;
  std::printf("SBM graph: %u nodes in %u blocks, %llu arcs\n", g.num_nodes(),
              sbm_params.blocks, static_cast<unsigned long long>(g.num_arcs()));

  engine::TablePrinter table({"system", "simulated time", "link AUC",
                              "classification F1", "chance F1"});
  auto add_row = [&](const char* name, double seconds,
                     const linalg::DenseMatrix& vectors) {
    const double auc =
        embed::LinkPredictionAuc(g, vectors, 1500, 3).ValueOr(0.0);
    const auto cls = embed::EvaluateClassification(vectors, sbm.labels);
    table.AddRow({name, HumanSeconds(seconds), FormatDouble(auc, 3),
                  FormatDouble(cls.ok() ? cls.value().micro_f1 : 0.0, 3),
                  FormatDouble(1.0 / sbm_params.blocks, 3)});
  };

  linalg::DenseMatrix omega_vectors;
  linalg::DenseMatrix prone_vectors;
  for (auto system : {engine::SystemKind::kOmega, engine::SystemKind::kProneDram}) {
    auto options = bench::DefaultOptions(system, env.threads);
    options.prone.dim = 32;
    auto report = engine::RunEmbedding(g, "sbm", options, env.Context());
    if (!report.ok()) continue;
    add_row(engine::SystemName(system), report.value().embed_seconds,
            report.value().embedding);
    (system == engine::SystemKind::kOmega ? omega_vectors : prone_vectors) =
        report.value().embedding;
  }

  {
    embed::WalkOptions walks;
    walks.walks_per_node = 10;
    walks.walk_length = 24;
    embed::SgnsOptions sgns;
    sgns.dim = 32;
    sgns.epochs = 2;
    auto dw = embed::DeepWalkEmbed(
        g, walks, sgns, env.ms.get(),
        {memsim::Tier::kPm, memsim::Placement::kInterleaved}, env.threads);
    if (dw.ok()) {
      add_row("DeepWalk (walks+SGNS)", dw.value().simulated_seconds,
              dw.value().vectors);
    }
  }
  table.Print();

  const double diff =
      linalg::DenseMatrix::MaxAbsDiff(omega_vectors, prone_vectors);
  std::printf(
      "\nmax |OMeGa - ProNE| embedding difference: %.2e (same model, same\n"
      "seeds — the heterogeneous-memory optimizations change *where* data\n"
      "lives, never *what* is computed; §IV-B's effectiveness claim)\n",
      diff);
  return 0;
}
