// Fig. 18 reproduction:
//   (a) end-to-end runtime vs the distributed systems DistGER and DistDGL
//       (4-machine analogues);
//   (b) single-SpMM runtime vs the SpMM-optimized systems SEM-SpMM
//       (SSD semi-external) and FusedMM (in-memory fused kernel).
//
// Shapes to check: OMeGa beats DistDGL everywhere (paper: 4.31x average) and
// is competitive with DistGER (faster on PK, comparable on the rest); OMeGa
// beats SEM-SpMM by a wide margin (paper: 15.69x average, exploding on big
// graphs) and FusedMM by 2-3x, with FusedMM OOMing on TW-2010/FR.

#include "bench_util.h"
#include "common/string_util.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"
#include "sparse/csdb_ops.h"
#include "sparse/fused.h"
#include "sparse/semi_external.h"

int main() {
  using namespace omega;
  using bench::Ratio;
  bench::Env env = bench::MakeEnv(36);

  // --- (a) distributed systems ------------------------------------------------
  engine::PrintExperimentHeader("Fig. 18a",
                                "end-to-end vs DistGER / DistDGL (4 machines)");
  engine::TablePrinter dist({"Graph", "OMeGa", "DistGER", "DistDGL",
                             "OMeGa vs DistGER", "OMeGa vs DistDGL"});
  std::vector<double> dgl_speedups;
  for (const std::string& name : bench::AllGraphNames()) {
    const graph::Graph g = bench::LoadGraphOrDie(name);
    const auto omega_report = engine::RunEmbedding(
        g, name, bench::DefaultOptions(engine::SystemKind::kOmega, env.threads),
        env.Context());
    const auto ger_report = engine::RunEmbedding(
        g, name, bench::DefaultOptions(engine::SystemKind::kDistGer, env.threads),
        env.Context());
    const auto dgl_report = engine::RunEmbedding(
        g, name, bench::DefaultOptions(engine::SystemKind::kDistDgl, env.threads),
        env.Context());
    const double t_omega = omega_report.value().total_seconds;
    const double t_ger = ger_report.value().total_seconds;
    const double t_dgl = dgl_report.value().total_seconds;
    dgl_speedups.push_back(t_dgl / t_omega);
    dist.AddRow({name, HumanSeconds(t_omega), HumanSeconds(t_ger),
                 HumanSeconds(t_dgl), Ratio(t_ger, t_omega),
                 Ratio(t_dgl, t_omega)});
  }
  dist.Print();
  std::printf("geomean OMeGa speedup over DistDGL: %.2fx (paper: 4.31x)\n",
              engine::GeometricMean(dgl_speedups));

  // --- (b) SpMM-optimized systems ----------------------------------------------
  engine::PrintExperimentHeader("Fig. 18b",
                                "single SpMM vs SEM-SpMM / FusedMM");
  engine::TablePrinter spmm({"Graph", "OMeGa", "SEM-SpMM", "FusedMM",
                             "vs SEM", "vs Fused"});
  std::vector<double> sem_speedups;
  std::vector<double> fused_speedups;
  for (const std::string& name : bench::AllGraphNames()) {
    const graph::Graph g = bench::LoadGraphOrDie(name);
    const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(g);
    const auto csr = sparse::ToCsr(a).value();
    const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 32, 43);
    linalg::DenseMatrix c(a.num_rows(), 32);

    numa::NadpOptions omega_opts;
    omega_opts.num_threads = env.threads;
    const double t_omega =
        numa::NadpSpmm(a, b, &c, omega_opts, env.Context())
            .phase_seconds;

    sparse::SemiExternalOptions sem_opts;
    sem_opts.num_threads = env.threads;
    sem_opts.dram_budget_bytes =
        env.ms->CapacityBytes(memsim::Tier::kDram) * 2 * 3 / 4;
    const double t_sem =
        sparse::SemiExternalSpmm(csr, b, &c, sem_opts, env.Context())
            .phase_seconds;

    sparse::FusedMmOptions fused_opts;
    fused_opts.num_threads = env.threads;
    const auto fused =
        sparse::FusedMmSpmm(csr, b, &c, fused_opts, env.Context());

    sem_speedups.push_back(t_sem / t_omega);
    std::string fused_cell = "OOM";
    std::string fused_ratio = "-";
    if (fused.ok()) {
      fused_cell = HumanSeconds(fused.value().phase_seconds);
      fused_ratio = Ratio(fused.value().phase_seconds, t_omega);
      fused_speedups.push_back(fused.value().phase_seconds / t_omega);
    }
    spmm.AddRow({name, HumanSeconds(t_omega), HumanSeconds(t_sem), fused_cell,
                 Ratio(t_sem, t_omega), fused_ratio});
  }
  spmm.Print();
  std::printf(
      "geomean OMeGa speedup: %.2fx over SEM-SpMM (paper: 15.69x), %.2fx over "
      "FusedMM where it runs (paper: 2.11-3.26x; OOM on TW-2010 as in the "
      "paper)\n",
      engine::GeometricMean(sem_speedups), engine::GeometricMean(fused_speedups));
  return 0;
}
