// Fig. 14 reproduction: SpMM execution time with and without WoFP, on top of
// EaTA, across the dataset analogues. The reported time includes thread
// allocation and prefetcher construction, as in the paper.
//
// Shapes to check: consistent improvement from WoFP (paper: 37.28% average,
// up to 52% on OR), with EaTA+WoFP overheads remaining a tiny fraction.

#include "bench_util.h"
#include "common/string_util.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"

int main() {
  using namespace omega;
  bench::Env env = bench::MakeEnv(36);
  engine::PrintExperimentHeader("Fig. 14", "SpMM with and without WoFP (EaTA)");

  engine::TablePrinter table(
      {"Graph", "OMeGa-w/o-WoFP", "OMeGa", "improvement", "paper"});
  const char* paper_improvement[] = {"~35%", "~30%", "52%", "~35%", "~38%", "~33%"};
  std::vector<double> improvements;
  int row_idx = 0;
  for (const std::string& name : bench::AllGraphNames()) {
    const graph::Graph g = bench::LoadGraphOrDie(name);
    const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(g);
    const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 32, 23);
    linalg::DenseMatrix c(a.num_rows(), 32);

    numa::NadpOptions with;
    with.num_threads = env.threads;
    with.use_wofp = true;
    numa::NadpOptions without = with;
    without.use_wofp = false;

    const double t_with =
        numa::NadpSpmm(a, b, &c, with, env.Context()).phase_seconds;
    const double t_without =
        numa::NadpSpmm(a, b, &c, without, env.Context())
            .phase_seconds;
    const double improvement = 100.0 * (1.0 - t_with / t_without);
    improvements.push_back(improvement);
    table.AddRow({name, HumanSeconds(t_without), HumanSeconds(t_with),
                  FormatDouble(improvement, 1) + "%",
                  paper_improvement[row_idx++]});
  }
  table.Print();
  double avg = 0.0;
  for (double i : improvements) avg += i;
  std::printf("\naverage WoFP improvement: %.1f%% (paper: 37.28%% average)\n",
              avg / improvements.size());
  return 0;
}
