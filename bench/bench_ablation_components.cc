// Ablation: the contribution of each OMeGa component, stacked.
//
// DESIGN.md calls out the design choices; this harness quantifies each one by
// building the stack up from the unoptimized baseline (CSR + static rows +
// Interleaved placement on DRAM+PM) to full OMeGa:
//   base        CSR, static equal-row chunks, Interleaved, no prefetch
//   +CSDB/EaTA  entropy-aware allocation on the CSDB format
//   +WoFP       workload feature-aware prefetching
//   +NaDP       NUMA-aware data placement
// and, end-to-end, +ASL (streaming overlap).

#include "bench_util.h"
#include "common/string_util.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"
#include "omega/baselines.h"
#include "stream/asl.h"
#include "sparse/csdb_ops.h"

int main() {
  using namespace omega;
  bench::Env env = bench::MakeEnv(36);
  engine::PrintExperimentHeader("Ablation",
                                "per-component SpMM gains, stacked (LJ)");

  const graph::Graph g = bench::LoadGraphOrDie("LJ");
  const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(g);
  const auto csr = sparse::ToCsr(a).value();
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 32, 53);
  linalg::DenseMatrix c(a.num_rows(), 32);

  engine::TablePrinter table({"configuration", "SpMM time", "vs base", "step gain"});
  std::vector<std::pair<std::string, double>> rows;

  // Base: CSR, static chunks, interleaved placements (no NUMA awareness).
  {
    sparse::SpmmPlacements pl;
    pl.index = {memsim::Tier::kPm, memsim::Placement::kInterleaved};
    pl.sparse = {memsim::Tier::kPm, memsim::Placement::kInterleaved};
    pl.dense = {memsim::Tier::kPm, memsim::Placement::kInterleaved};
    pl.result = {memsim::Tier::kDram, memsim::Placement::kInterleaved};
    const auto r = engine::StaticCsrSpmm(csr, b, &c, pl, env.Context());
    rows.emplace_back("CSR + static rows + Interleaved", r.phase_seconds);
  }

  auto run_nadp = [&](sched::AllocatorKind alloc, bool wofp, bool nadp) {
    numa::NadpOptions opts;
    opts.num_threads = env.threads;
    opts.allocator = alloc;
    opts.use_wofp = wofp;
    opts.enabled = nadp;
    return numa::NadpSpmm(a, b, &c, opts, env.Context())
        .phase_seconds;
  };
  rows.emplace_back("+ CSDB + EaTA",
                    run_nadp(sched::AllocatorKind::kEntropyAware, false, false));
  rows.emplace_back("+ WoFP",
                    run_nadp(sched::AllocatorKind::kEntropyAware, true, false));
  rows.emplace_back("+ NaDP (full OMeGa SpMM)",
                    run_nadp(sched::AllocatorKind::kEntropyAware, true, true));

  const double base = rows[0].second;
  double prev = base;
  for (const auto& [name, seconds] : rows) {
    table.AddRow({name, HumanSeconds(seconds), bench::Ratio(base, seconds),
                  bench::Ratio(prev, seconds)});
    prev = seconds;
  }
  table.Print();

  // End-to-end ASL contribution on a graph whose dense working set exceeds
  // the DRAM window (the FR analogue).
  engine::PrintExperimentHeader("Ablation (ASL)",
                                "end-to-end with and without streaming overlap");
  const graph::Graph fr = bench::LoadGraphOrDie("FR");
  auto with_asl = bench::DefaultOptions(engine::SystemKind::kOmega, env.threads);
  auto without_asl = with_asl;
  without_asl.features.use_asl = false;
  const auto r_with =
      engine::RunEmbedding(fr, "FR", with_asl, env.Context());
  const auto r_without =
      engine::RunEmbedding(fr, "FR", without_asl, env.Context());
  engine::TablePrinter asl_table({"configuration", "total", "gain"});
  asl_table.AddRow({"OMeGa w/o ASL",
                    HumanSeconds(r_without.value().total_seconds), "-"});
  asl_table.AddRow({"OMeGa (ASL)", HumanSeconds(r_with.value().total_seconds),
                    bench::Ratio(r_without.value().total_seconds,
                                 r_with.value().total_seconds)});
  asl_table.Print();
  std::printf(
      "\nnote: ASL hides the PM->DRAM staging behind compute; its end-to-end\n"
      "gain is bounded by the staging:compute ratio, which shrinks at the\n"
      "analogue scale. The streamer itself hides the loads effectively:\n");

  // Direct measurement of the double-buffering pipeline on a staging-heavy
  // configuration (load comparable to compute).
  stream::AslConfig cfg;
  cfg.dense_rows = fr.num_nodes();
  cfg.dense_cols = 32;
  cfg.sparse_bytes = engine::SparseBytes(fr.num_arcs());
  cfg.dram_budget = cfg.sparse_bytes +
                    2 * cfg.dense_rows * cfg.dense_cols * sizeof(float) +
                    (12ULL << 20);
  stream::AslStreamer streamer(
      env.Context(), cfg, {memsim::Tier::kPm, memsim::Placement::kInterleaved},
      {memsim::Tier::kDram, memsim::Placement::kInterleaved});
  const auto probe = streamer.Run([&](size_t k, size_t b2, size_t e2) {
    // A compute phase of the same order as one partition load.
    return streamer.LoadSeconds(b2, e2) * (k % 2 == 0 ? 0.8 : 1.2);
  });
  if (probe.ok()) {
    std::printf("  pipelined %s vs serial %s: %.0f%% of the load time hidden\n",
                HumanSeconds(probe.value().total_seconds).c_str(),
                HumanSeconds(probe.value().serial_seconds).c_str(),
                probe.value().OverlapEfficiency() * 100.0);
  }
  return 0;
}
