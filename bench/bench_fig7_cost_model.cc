// Fig. 7 reproduction: the SpMM cost analysis behind EaTA.
//   (a) execution-time breakdown across the five operations of Algorithm 1;
//   (b) per-thread get_dense_nnz throughput vs the workload's inherent
//       scatter factor W_sca (both should rise together);
//   (c) per-thread running time vs workload entropy H with the least-squares
//       slope K — the linear relationship (T = K*H) EaTA builds on.

#include <cmath>

#include "bench_util.h"
#include "common/string_util.h"
#include "linalg/random_matrix.h"
#include "sched/allocators.h"
#include "sparse/spmm.h"

int main() {
  using namespace omega;
  bench::Env env = bench::MakeEnv(36);
  const graph::Graph g = bench::LoadGraphOrDie("LJ");
  const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(g);
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 32, 5);
  linalg::DenseMatrix c(a.num_rows(), 32);

  sched::AllocatorOptions opts;
  opts.num_threads = env.threads;
  const auto workloads =
      sched::Allocate(a, sched::AllocatorKind::kWorkloadBalanced, opts);
  const auto result = sparse::ParallelSpmm(a, b, &c, workloads,
                                           sparse::SpmmPlacements{}, env.Context());

  // --- (a) breakdown ---------------------------------------------------------
  engine::PrintExperimentHeader("Fig. 7a",
                                "SpMM execution-time breakdown (LJ, WaTA)");
  engine::TablePrinter breakdown({"operation", "seconds", "share"});
  const double total = result.total_breakdown.Total();
  for (int op = 0; op < sparse::kNumSpmmOps; ++op) {
    const double s = result.total_breakdown.seconds[op];
    breakdown.AddRow({sparse::SpmmOpName(static_cast<sparse::SpmmOp>(op)),
                      HumanSeconds(s), FormatDouble(100.0 * s / total, 1) + "%"});
  }
  breakdown.Print();
  std::printf("(paper: get_dense_nnz dominates)\n");

  // --- (b) throughput vs scatter factor -------------------------------------
  engine::PrintExperimentHeader(
      "Fig. 7b", "per-thread gather throughput vs scatter factor W_sca");
  engine::TablePrinter scatter({"thread", "W_sca", "gather Mnnz/s"});
  for (size_t t = 0; t < workloads.size(); ++t) {
    if (workloads[t].empty()) continue;
    const double gather_s = result.thread_breakdowns[t]
                                .seconds[static_cast<int>(sparse::SpmmOp::kGetDenseNnz)];
    const double throughput =
        gather_s > 0 ? workloads[t].nnz * 32 / gather_s / 1e6 : 0.0;
    scatter.AddRow({std::to_string(t), FormatDouble(workloads[t].scatter, 3),
                    FormatDouble(throughput, 1)});
  }
  scatter.Print();
  std::printf("(paper: throughput falls as the workload becomes more scattered)\n");

  // --- (c) running time vs entropy with least-squares fit --------------------
  engine::PrintExperimentHeader("Fig. 7c",
                                "thread running time vs workload entropy H");
  double sum_h = 0.0;
  double sum_t = 0.0;
  double sum_hh = 0.0;
  double sum_ht = 0.0;
  double sum_tt = 0.0;
  int n = 0;
  engine::TablePrinter fit({"thread", "H", "time"});
  for (size_t t = 0; t < workloads.size(); ++t) {
    if (workloads[t].empty()) continue;
    const double h = workloads[t].entropy;
    const double sec = result.thread_seconds[t];
    fit.AddRow({std::to_string(t), FormatDouble(h, 3), HumanSeconds(sec)});
    sum_h += h;
    sum_t += sec;
    sum_hh += h * h;
    sum_ht += h * sec;
    sum_tt += sec * sec;
    ++n;
  }
  fit.Print();
  const double k_slope = (n * sum_ht - sum_h * sum_t) / (n * sum_hh - sum_h * sum_h);
  const double corr = (n * sum_ht - sum_h * sum_t) /
                      std::sqrt((n * sum_hh - sum_h * sum_h) *
                                (n * sum_tt - sum_t * sum_t));
  std::printf("least-squares fit T = K*H + c: K = %.3e s/nat, correlation r = %.3f\n",
              k_slope, corr);
  std::printf("(paper: strong linear relationship between T(p_i) and H_i)\n");
  return 0;
}
