#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/string_util.h"
#include "common/topk.h"

namespace omega::bench {

Env MakeEnv(int threads) {
  Env env;
  env.ms = memsim::MemorySystem::CreateDefault();
  env.pool = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
  env.trace = std::make_unique<exec::TraceRecorder>();
  env.threads = threads;
  return env;
}

const std::vector<std::string>& AllGraphNames() {
  static const std::vector<std::string> kNames = {"PK", "LJ", "OR",
                                                  "TW", "TW-2010", "FR"};
  return kNames;
}

graph::Graph LoadGraphOrDie(const std::string& name) {
  auto g = graph::LoadDatasetByName(name);
  if (!g.ok()) {
    std::fprintf(stderr, "failed to load dataset %s: %s\n", name.c_str(),
                 g.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(g).value();
}

engine::EngineOptions DefaultOptions(engine::SystemKind system, int threads) {
  engine::EngineOptions options;
  options.system = system;
  options.num_threads = threads;
  options.prone.dim = 32;
  options.prone.oversample = 8;
  options.prone.chebyshev_order = 8;
  return options;
}

std::string Ratio(double a, double b) {
  if (b <= 0.0) return "-";
  return FormatDouble(a / b, 2) + "x";
}

double Percentile(std::vector<double> values, double p) {
  return omega::Percentile(std::move(values), p);
}

double StdDev(const std::vector<double>& values) {
  return omega::StdDev(values);
}

std::string PhaseTableString(const engine::RunReport& report) {
  if (report.phases.empty()) return "";
  engine::TablePrinter table({"phase", "sim s", "wall s", "DRAM", "PM", "SSD",
                              "NET", "PIM", "remote %", "ovl %",
                              "plan h/m/i"});
  for (const exec::PhaseRecord& p : report.phases) {
    const bool plan_active =
        p.plan_hits + p.plan_misses + p.plan_invalidations > 0;
    table.AddRow({p.aux ? p.name + " (aux)" : p.name,
                  FormatDouble(p.sim_seconds, 3),
                  FormatDouble(p.wall_seconds, 3),
                  HumanBytes(p.TierBytes(memsim::Tier::kDram)),
                  HumanBytes(p.TierBytes(memsim::Tier::kPm)),
                  HumanBytes(p.TierBytes(memsim::Tier::kSsd)),
                  HumanBytes(p.TierBytes(memsim::Tier::kNetwork)),
                  HumanBytes(p.TierBytes(memsim::Tier::kPim)),
                  FormatDouble(p.remote_fraction * 100.0, 1),
                  p.fetch_seconds > 0.0
                      ? FormatDouble(p.OverlapEfficiency() * 100.0, 1)
                      : "-",
                  plan_active ? std::to_string(p.plan_hits) + "/" +
                                    std::to_string(p.plan_misses) + "/" +
                                    std::to_string(p.plan_invalidations)
                              : "-"});
  }
  return "  phases of " + report.system + " on " + report.dataset + ":\n" +
         table.ToString();
}

void PrintPhaseTable(const engine::RunReport& report) {
  std::fputs(PhaseTableString(report).c_str(), stdout);
}

std::string Fig12OverallReport(Env& env) {
  std::string out = engine::ExperimentHeaderString(
      "Fig. 12", "overall runtime, OMeGa vs six competitors");

  const std::vector<engine::SystemKind> systems = {
      engine::SystemKind::kOmega,     engine::SystemKind::kOmegaDram,
      engine::SystemKind::kOmegaPm,   engine::SystemKind::kProneDram,
      engine::SystemKind::kProneHm,   engine::SystemKind::kGinex,
      engine::SystemKind::kMariusGnn,
  };

  std::vector<std::string> headers = {"Graph"};
  for (auto s : systems) headers.push_back(engine::SystemName(s));
  engine::TablePrinter table(headers);

  std::vector<double> speedups;  // competitor / OMeGa across runnable pairs
  for (const std::string& name : AllGraphNames()) {
    const graph::Graph g = LoadGraphOrDie(name);
    std::vector<std::string> row = {name};
    double omega_seconds = 0.0;
    for (auto system : systems) {
      const auto options = DefaultOptions(system, env.threads);
      auto report = engine::RunEmbedding(g, name, options, env.Context());
      if (!report.ok()) {
        row.push_back(report.status().IsCapacityExceeded() ? "OOM" : "ERR");
        continue;
      }
      const double seconds = report.value().total_seconds;
      row.push_back(HumanSeconds(seconds));
      if (PhaseTraceEnabled()) out += PhaseTableString(report.value());
      if (system == engine::SystemKind::kOmega) {
        omega_seconds = seconds;
      } else if (system != engine::SystemKind::kOmegaDram && omega_seconds > 0) {
        speedups.push_back(seconds / omega_seconds);
      }
    }
    table.AddRow(std::move(row));
  }
  out += table.ToString();
  char footer[256];
  std::snprintf(
      footer, sizeof(footer),
      "\naverage OMeGa speedup over runnable non-ideal competitors (geomean): "
      "%.2fx\n(paper reports 32.03x average across its baselines at full "
      "hardware scale)\n",
      engine::GeometricMean(speedups));
  out += footer;
  return out;
}

void BenchJson::Add(const std::string& entry, const std::string& metric,
                    double value) {
  if (!std::isfinite(value)) {
    // NaN/Inf are not valid JSON values; a poisoned metric would make the
    // whole BENCH_*.json unparseable for the perf-tracking scripts.
    std::fprintf(stderr, "bench json: dropping non-finite %s.%s\n",
                 entry.c_str(), metric.c_str());
    return;
  }
  for (auto& [name, metrics] : entries_) {
    if (name == entry) {
      metrics.emplace_back(metric, value);
      return;
    }
  }
  entries_.push_back({entry, {{metric, value}}});
}

bool BenchJson::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write bench json to %s\n", path.c_str());
    return false;
  }
  char value[64];
  out << "{\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    const auto& [name, metrics] = entries_[i];
    out << "  " << JsonQuoted(name) << ": {";
    for (size_t j = 0; j < metrics.size(); ++j) {
      std::snprintf(value, sizeof(value), "%.17g", metrics[j].second);
      out << JsonQuoted(metrics[j].first) << ": " << value;
      if (j + 1 < metrics.size()) out << ", ";
    }
    out << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
  }
  out << "}\n";
  return static_cast<bool>(out);
}

std::string BenchJsonPathFromArgs(int* argc, char** argv) {
  constexpr const char* kPrefix = "--bench-json=";
  const size_t prefix_len = std::strlen(kPrefix);
  std::string path;
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, prefix_len) == 0) {
      path = argv[i] + prefix_len;
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  return path;
}

bool PhaseTraceEnabled() {
  const char* v = std::getenv("OMEGA_PHASE_TRACE");
  return v != nullptr && v[0] == '1';
}

const std::vector<TableTwoRef>& PaperTableTwo() {
  static const std::vector<TableTwoRef> kRefs = {
      {"PK", 16.23, 3.76, 2.16},      {"LJ", 36.52, 10.15, 7.12},
      {"OR", 77.60, 24.27, 18.91},    {"TW", 40.17, 7.43, 7.17},
      {"TW-2010", 1565.38, 316.95, 295.29}, {"FR", 16566.25, 2530.97, 2432.11},
  };
  return kRefs;
}

}  // namespace omega::bench
