// Fig. 9 reproduction: sequential/random read and write bandwidth of
// local/remote PM across thread counts, measured through the simulated
// device's charging path (the paper used FIO + NUMACTL on Optane DIMMs).
//
// Shapes to check against the paper:
//   * remote sequential reads reach nearly the local sequential peak;
//   * sequential local reads peak ~2.4x above random reads;
//   * local writes far exceed remote writes (3.23x seq, 4.99x rand at peak);
//   * every curve rises with threads and then saturates.

#include "bench_util.h"
#include "common/string_util.h"
#include "memsim/bandwidth_probe.h"

int main() {
  using namespace omega;
  using namespace omega::memsim;
  bench::Env env = bench::MakeEnv(1);
  engine::PrintExperimentHeader(
      "Fig. 9", "PM bandwidth (GB/s): seq/rand x read/write x local/remote");

  const std::vector<int> threads = {1, 2, 4, 8, 12, 18};
  engine::TablePrinter table({"series", "t=1", "t=2", "t=4", "t=8", "t=12",
                              "t=18"});
  for (MemOp op : {MemOp::kRead, MemOp::kWrite}) {
    for (Pattern pat : {Pattern::kSequential, Pattern::kRandom}) {
      for (Locality loc : {Locality::kLocal, Locality::kRemote}) {
        std::vector<std::string> row;
        row.push_back(std::string(PatternName(pat)) + "-" + MemOpName(op) + "-" +
                      (loc == Locality::kLocal ? "L" : "R"));
        for (int t : threads) {
          const auto s = ProbeBandwidth(env.ms.get(), Tier::kPm, op, pat, loc, t,
                                        64ULL << 20);
          row.push_back(FormatDouble(s.gbps, 2));
        }
        table.AddRow(std::move(row));
      }
    }
  }
  table.Print();

  // Headline ratios at saturation.
  auto peak = [&](MemOp op, Pattern pat, Locality loc) {
    return ProbeBandwidth(env.ms.get(), Tier::kPm, op, pat, loc, 18, 64ULL << 20)
        .gbps;
  };
  std::printf("\npeak ratios (paper values in parentheses):\n");
  std::printf("  seq-remote-read / seq-local-read : %.2f (~1.0)\n",
              peak(MemOp::kRead, Pattern::kSequential, Locality::kRemote) /
                  peak(MemOp::kRead, Pattern::kSequential, Locality::kLocal));
  std::printf("  seq-local-read  / rand-local-read: %.2f (2.41)\n",
              peak(MemOp::kRead, Pattern::kSequential, Locality::kLocal) /
                  peak(MemOp::kRead, Pattern::kRandom, Locality::kLocal));
  std::printf("  seq-local-write / seq-remote-write: %.2f (3.23)\n",
              peak(MemOp::kWrite, Pattern::kSequential, Locality::kLocal) /
                  peak(MemOp::kWrite, Pattern::kSequential, Locality::kRemote));
  std::printf("  seq-local-write / rand-remote-write: %.2f (4.99)\n",
              peak(MemOp::kWrite, Pattern::kSequential, Locality::kLocal) /
                  peak(MemOp::kWrite, Pattern::kRandom, Locality::kRemote));
  return 0;
}
