// Fig. 19 reproduction:
//   (a) graph reading (format construction) time, CSDB vs CSR, per dataset;
//   (b) WoFP prefetcher-type threshold eta sensitivity on PK;
//   (c) WoFP prefetch-size sigma sensitivity on PK.
//
// Shapes to check: CSDB reads ~1.35x faster than CSR (a); both parameter
// curves are U-shaped — too-small and too-large values degrade (b, c).

#include "bench_util.h"
#include "common/string_util.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"

int main() {
  using namespace omega;
  bench::Env env = bench::MakeEnv(36);

  // --- (a) graph reading -------------------------------------------------------
  engine::PrintExperimentHeader("Fig. 19a",
                                "graph reading time: CSDB vs CSR");
  engine::TablePrinter reading({"Graph", "CSR", "CSDB", "CSDB speedup"});
  std::vector<double> read_speedups;
  for (const std::string& name : bench::AllGraphNames()) {
    const graph::Graph g = bench::LoadGraphOrDie(name);
    const double csr = engine::SimulatedGraphReadSeconds(
        env.Context(), engine::GraphFormat::kCsr, g.num_arcs(), g.num_nodes());
    const double csdb = engine::SimulatedGraphReadSeconds(
        env.Context(), engine::GraphFormat::kCsdb, g.num_arcs(), g.num_nodes());
    read_speedups.push_back(csr / csdb);
    reading.AddRow({name, HumanSeconds(csr), HumanSeconds(csdb),
                    bench::Ratio(csr, csdb)});
  }
  reading.Print();
  std::printf("geomean CSDB reading speedup: %.2fx (paper: 1.35x)\n",
              engine::GeometricMean(read_speedups));

  // Shared setup for the WoFP parameter sweeps.
  const graph::Graph g = bench::LoadGraphOrDie("PK");
  const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(g);
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 32, 47);
  auto spmm_seconds = [&](double eta, double sigma) {
    linalg::DenseMatrix c(a.num_rows(), 32);
    numa::NadpOptions opts;
    opts.num_threads = env.threads;
    opts.wofp.eta = eta;
    opts.wofp.sigma = sigma;
    return numa::NadpSpmm(a, b, &c, opts, env.Context())
        .phase_seconds;
  };

  // --- (b) eta sensitivity -------------------------------------------------------
  engine::PrintExperimentHeader(
      "Fig. 19b", "WoFP prefetcher-type threshold eta sensitivity (PK)");
  engine::TablePrinter eta_table({"eta", "SpMM time", "normalized"});
  std::vector<std::pair<double, double>> eta_points;
  for (double eta : {0.0, 5e-4, 2e-3, 1e-2, 5e-2, 1.0}) {
    eta_points.emplace_back(eta, spmm_seconds(eta, 0.10));
  }
  double best_eta = eta_points[0].second;
  for (const auto& [eta, t] : eta_points) best_eta = std::min(best_eta, t);
  for (const auto& [eta, t] : eta_points) {
    eta_table.AddRow({FormatDouble(eta, 4), HumanSeconds(t),
                      FormatDouble(t / best_eta, 3)});
  }
  eta_table.Print();

  // --- (c) sigma sensitivity ------------------------------------------------------
  engine::PrintExperimentHeader("Fig. 19c",
                                "WoFP prefetch-size sigma sensitivity (PK)");
  engine::TablePrinter sigma_table({"sigma", "SpMM time", "normalized"});
  std::vector<std::pair<double, double>> sigma_points;
  for (double sigma : {0.01, 0.05, 0.10, 0.20, 0.40, 0.80}) {
    sigma_points.emplace_back(sigma, spmm_seconds(2e-3, sigma));
  }
  double best_sigma = sigma_points[0].second;
  for (const auto& [sigma, t] : sigma_points) best_sigma = std::min(best_sigma, t);
  for (const auto& [sigma, t] : sigma_points) {
    sigma_table.AddRow({FormatDouble(sigma, 2), HumanSeconds(t),
                        FormatDouble(t / best_sigma, 3)});
  }
  sigma_table.Print();
  std::printf("(paper: both curves degrade away from the tuned defaults)\n");
  return 0;
}
