// Serving-layer benchmark: batched scheduler + hot cache vs the per-request
// baseline on the same closed-loop Zipf workload.
//
// Both modes serve an identical synthetic embedding with identical client
// streams (same seeds); only the scheduler differs. Per-request pays one
// uncoalesced cache fetch and one full embedding scan per top-k query;
// batching coalesces the fetches and shares the scan across the batch, which
// is where the >= 2x QPS gap comes from. The table reports client-observed
// latency percentiles, QPS, cache hit rate, and per-tier simulated traffic.
//
//   bench_serving [--smoke] [--bench-json=<path>]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "linalg/random_matrix.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "serve/zipf.h"

namespace {

using namespace omega;

struct BenchConfig {
  uint32_t nodes = 32768;
  size_t dim = 32;
  int clients = 8;
  uint64_t requests_per_client = 500;
  size_t cache_bytes = 1 << 20;
  uint64_t seed = 42;
};

serve::LoadReport RunMode(const linalg::DenseMatrix& embedding,
                          const std::vector<uint32_t>& rank_to_key,
                          const BenchConfig& cfg, bool batched) {
  auto ms = memsim::MemorySystem::CreateDefault();

  serve::ServerOptions options;
  options.worker_threads = 2;
  options.batched = batched;
  options.cache.capacity_bytes = cfg.cache_bytes;
  options.cache.hot_fraction = 0.5;

  const exec::Context ctx(ms.get(), nullptr, options.worker_threads);
  serve::EmbeddingServer server(embedding, options, ctx);
  std::vector<prefetch::ScoredKey> popularity;
  popularity.reserve(cfg.nodes);
  for (uint32_t r = 0; r < cfg.nodes; ++r) {
    popularity.push_back({rank_to_key[r], cfg.nodes - r});
  }
  server.WarmHotSet(std::move(popularity));
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    std::exit(1);
  }

  serve::LoadgenOptions load;
  load.clients = cfg.clients;
  load.requests_per_client = cfg.requests_per_client;
  load.seed = cfg.seed;
  const serve::LoadReport report =
      serve::RunClosedLoop(&server, rank_to_key, load);
  server.Stop();
  return report;
}

void AddJson(bench::BenchJson* json, const std::string& entry,
             const serve::LoadReport& r) {
  json->Add(entry, "qps", r.sim_qps);
  json->Add(entry, "host_qps", r.host_qps);
  json->Add(entry, "p50_us", r.p50_us);
  json->Add(entry, "p99_us", r.p99_us);
  json->Add(entry, "mean_us", r.mean_us);
  json->Add(entry, "hit_rate", r.cache_delta.HitRate());
  json->Add(entry, "completed", static_cast<double>(r.completed));
  json->Add(entry, "rejections", static_cast<double>(r.rejections));
  json->Add(entry, "sim_seconds", r.sim_seconds);
  json->Add(entry, "dram_bytes",
            static_cast<double>(r.traffic_delta.TierBytes(memsim::Tier::kDram)));
  json->Add(entry, "pm_bytes",
            static_cast<double>(r.traffic_delta.TierBytes(memsim::Tier::kPm)));
  json->Add(entry, "ssd_bytes",
            static_cast<double>(r.traffic_delta.TierBytes(memsim::Tier::kSsd)));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::BenchJsonPathFromArgs(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  BenchConfig cfg;
  if (smoke) {
    cfg.nodes = 4096;
    cfg.clients = 4;
    cfg.requests_per_client = 50;
    cfg.cache_bytes = 128 << 10;
  }

  engine::PrintExperimentHeader(
      "serving", "batched scheduler + hot cache vs per-request baseline");
  std::printf(
      "embedding %u x %zu, %d closed-loop clients x %llu requests, Zipf "
      "skew %.2f, cache %s\n",
      cfg.nodes, cfg.dim, cfg.clients,
      static_cast<unsigned long long>(cfg.requests_per_client), 0.99,
      HumanBytes(cfg.cache_bytes).c_str());

  const linalg::DenseMatrix embedding =
      linalg::GaussianMatrix(cfg.nodes, cfg.dim, cfg.seed);
  const std::vector<uint32_t> rank_to_key =
      serve::RankPermutation(cfg.nodes, SplitMix64(cfg.seed));

  const serve::LoadReport per_request =
      RunMode(embedding, rank_to_key, cfg, /*batched=*/false);
  const serve::LoadReport batched =
      RunMode(embedding, rank_to_key, cfg, /*batched=*/true);

  // "QPS" is the simulated machine's throughput (completed / simulated
  // seconds) — the headline metric, like every harness here reports simulated
  // runtimes. "host QPS" is the host scheduler's closed-loop rate; the two
  // modes do identical scoring FLOPs, so the host column mostly measures the
  // host CPU, not the memory system the batching exists to relieve.
  engine::TablePrinter table({"mode", "QPS", "host QPS", "mean us", "p50 us",
                              "p99 us", "hit %", "batch", "DRAM", "PM",
                              "sim s"});
  auto add_row = [&](const char* mode, const serve::LoadReport& r) {
    table.AddRow(
        {mode, FormatDouble(r.sim_qps, 0), FormatDouble(r.host_qps, 0),
         FormatDouble(r.mean_us, 1), FormatDouble(r.p50_us, 1),
         FormatDouble(r.p99_us, 1),
         FormatDouble(r.cache_delta.HitRate() * 100.0, 1),
         FormatDouble(r.server.batches > 0
                          ? static_cast<double>(r.server.completed) /
                                static_cast<double>(r.server.batches)
                          : 0.0,
                      2),
         HumanBytes(r.traffic_delta.TierBytes(memsim::Tier::kDram)),
         HumanBytes(r.traffic_delta.TierBytes(memsim::Tier::kPm)),
         FormatDouble(r.sim_seconds, 3)});
  };
  add_row("per-request", per_request);
  add_row("batched", batched);
  table.Print();
  const double speedup =
      per_request.sim_qps > 0.0 ? batched.sim_qps / per_request.sim_qps : 0.0;
  std::printf("batched QPS speedup over per-request: %s (host: %s)\n",
              bench::Ratio(batched.sim_qps, per_request.sim_qps).c_str(),
              bench::Ratio(batched.host_qps, per_request.host_qps).c_str());

  if (!json_path.empty()) {
    bench::BenchJson json;
    AddJson(&json, "serving.per_request", per_request);
    AddJson(&json, "serving.batched", batched);
    json.Add("serving", "speedup", speedup);
    json.Add("serving", "host_speedup",
             per_request.host_qps > 0.0
                 ? batched.host_qps / per_request.host_qps
                 : 0.0);
    if (!json.WriteFile(json_path)) return 1;
    std::printf("bench json written to %s\n", json_path.c_str());
  }
  return 0;
}
