// Ablation: OMeGa across capacity-tier technologies.
//
// The paper's conclusion argues OMeGa transfers to future hierarchies ("the
// rise of CXL enables the integration of PM into scalable memory
// architectures"). This harness runs the identical OMeGa stack with the
// capacity tier modeled as Optane PM (the paper's hardware) and as a CXL.mem
// DDR expander, against the DRAM-only ideal — quantifying how much of the
// DRAM gap each technology closes and how much OMeGa's optimizations still
// contribute on CXL.

#include <cstring>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"

int main(int argc, char** argv) {
  using namespace omega;
  // --smoke: PK only (CI-sized run); --async: enable overlapped staging on
  // the OMeGa configurations.
  bool smoke = false;
  bool async_staging = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--async") == 0) async_staging = true;
  }
  engine::PrintExperimentHeader(
      "Tier ablation", "OMeGa on Optane-PM vs CXL.mem capacity tiers");

  ThreadPool pool(36);
  auto pm_machine = std::make_unique<memsim::MemorySystem>(
      memsim::TopologyConfig{}, memsim::DefaultProfiles());
  auto cxl_machine = std::make_unique<memsim::MemorySystem>(
      memsim::TopologyConfig{}, memsim::CxlProfiles());

  engine::TablePrinter table({"Graph", "OMeGa (PM)", "OMeGa (CXL)",
                              "OMeGa-DRAM", "CXL vs PM", "no-opt (CXL)"});
  std::vector<std::string> graphs = {"PK", "LJ", "OR", "TW"};
  if (smoke) graphs = {"PK"};
  for (const std::string& name : graphs) {
    const graph::Graph g = bench::LoadGraphOrDie(name);
    auto options = bench::DefaultOptions(engine::SystemKind::kOmega, 36);
    options.features.async_staging = async_staging;
    auto no_opt = options;
    no_opt.features.use_wofp = false;
    no_opt.features.use_nadp = false;
    no_opt.features.allocator = sched::AllocatorKind::kWorkloadBalanced;
    const auto dram_options =
        bench::DefaultOptions(engine::SystemKind::kOmegaDram, 36);

    const double on_pm =
        engine::RunEmbedding(g, name, options, exec::Context(pm_machine.get(), &pool))
            .value()
            .total_seconds;
    const double on_cxl =
        engine::RunEmbedding(g, name, options, exec::Context(cxl_machine.get(), &pool))
            .value()
            .total_seconds;
    const double on_cxl_no_opt =
        engine::RunEmbedding(g, name, no_opt, exec::Context(cxl_machine.get(), &pool))
            .value()
            .total_seconds;
    const double on_dram =
        engine::RunEmbedding(g, name, dram_options, exec::Context(pm_machine.get(), &pool))
            .value()
            .total_seconds;
    table.AddRow({name, HumanSeconds(on_pm), HumanSeconds(on_cxl),
                  HumanSeconds(on_dram), bench::Ratio(on_pm, on_cxl),
                  HumanSeconds(on_cxl_no_opt)});
  }
  table.Print();
  std::printf(
      "\nshape: CXL narrows the capacity-tier gap but OMeGa's EaTA/WoFP/NaDP\n"
      "still pay off on it ('no-opt (CXL)' column), supporting the paper's\n"
      "portability claim (§VI).\n");
  return 0;
}
