// Table II reproduction: running time of RR / WaTA / EaTA for one SpMM.
//
// For each dataset analogue, one sparse-times-dense multiply (d = 32) is
// executed under the three thread-allocation schemes on the simulated DRAM+PM
// machine with 36 threads, mirroring the paper's setup. Absolute numbers are
// simulated seconds on the scaled machine; the column to compare with the
// paper is the speedup structure (EaTA <= WaTA << RR).

#include "bench_util.h"
#include "common/string_util.h"
#include "linalg/random_matrix.h"
#include "sched/allocators.h"
#include "sparse/spmm.h"

int main() {
  using namespace omega;
  using bench::Ratio;
  bench::Env env = bench::MakeEnv(36);
  engine::PrintExperimentHeader(
      "Table II", "SpMM running time under RR / WaTA / EaTA (36 threads)");

  engine::TablePrinter table({"Graph", "RR", "WaTA", "EaTA", "RR/EaTA",
                              "WaTA/EaTA", "paper RR/EaTA", "paper WaTA/EaTA"});
  std::vector<double> speedups;
  for (const auto& ref : bench::PaperTableTwo()) {
    const graph::Graph g = bench::LoadGraphOrDie(ref.graph);
    const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(g);
    const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 32, 11);
    linalg::DenseMatrix c(a.num_rows(), 32);

    double seconds[3] = {};
    const sched::AllocatorKind kinds[3] = {sched::AllocatorKind::kRoundRobin,
                                           sched::AllocatorKind::kWorkloadBalanced,
                                           sched::AllocatorKind::kEntropyAware};
    for (int k = 0; k < 3; ++k) {
      sched::AllocatorOptions opts;
      opts.num_threads = env.threads;
      const auto workloads = sched::Allocate(a, kinds[k], opts);
      seconds[k] = sparse::ParallelSpmm(a, b, &c, workloads,
                                        sparse::SpmmPlacements{}, env.Context())
                       .phase_seconds;
    }
    table.AddRow({ref.graph, HumanSeconds(seconds[0]), HumanSeconds(seconds[1]),
                  HumanSeconds(seconds[2]), Ratio(seconds[0], seconds[2]),
                  Ratio(seconds[1], seconds[2]), Ratio(ref.rr, ref.eata),
                  Ratio(ref.wata, ref.eata)});
    speedups.push_back(seconds[0] / seconds[2]);
    speedups.push_back(seconds[1] / seconds[2]);
  }
  table.Print();
  std::printf("\naverage EaTA speedup over {RR, WaTA} (geomean): %.2fx"
              " (paper reports 3.50x average)\n",
              engine::GeometricMean(speedups));
  return 0;
}
