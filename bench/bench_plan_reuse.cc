// Host-side payoff of the plan/execute split: the same NaDP SpMM issued
// repeatedly (a ProNE power-iteration pattern) with per-call planning vs one
// NadpPlan::Build + repeated NadpExecute. The simulated output is asserted
// byte-identical both ways (the two-clock contract); what changes is the host
// wall-clock, which is what this harness reports.
//
// Usage: bench_plan_reuse [--bench-json=PATH]

#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"

namespace omega::bench {
namespace {

constexpr int kIterations = 14;  // ~tSVD + Chebyshev SpMM count at d = 32

int Main(int argc, char** argv) {
  const std::string json_path = BenchJsonPathFromArgs(&argc, argv);

  graph::RmatParams params;
  params.scale = 16;
  params.num_edges = 1u << 20;
  const graph::CsdbMatrix a =
      graph::CsdbMatrix::FromGraph(graph::GenerateRmat(params).value());
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 32, 5);

  Env env = MakeEnv();
  numa::NadpOptions opts;
  opts.num_threads = env.threads;

  std::printf("bench_plan_reuse: %u rows, %llu nnz, d=%zu, %d iterations\n",
              a.num_rows(), static_cast<unsigned long long>(a.nnz()), b.cols(),
              kIterations);

  // Per-call planning: every SpMM repeats the inspector work.
  linalg::DenseMatrix c_percall(a.num_rows(), b.cols());
  double sim_percall = 0.0;
  WallTimer percall_timer;
  for (int i = 0; i < kIterations; ++i) {
    sim_percall =
        numa::NadpSpmm(a, b, &c_percall, opts, env.Context()).phase_seconds;
  }
  const double percall_seconds = percall_timer.Seconds();

  // Plan reuse: build once, execute kIterations times.
  linalg::DenseMatrix c_plan(a.num_rows(), b.cols());
  double sim_plan = 0.0;
  WallTimer plan_timer;
  const numa::NadpPlan plan = numa::NadpPlan::Build(a, opts, env.Context());
  for (int i = 0; i < kIterations; ++i) {
    sim_plan =
        numa::NadpExecute(plan, a, b, &c_plan, env.Context()).phase_seconds;
  }
  const double plan_seconds = plan_timer.Seconds();

  // The split must not move the simulation or the embeddings by one byte.
  if (sim_percall != sim_plan ||
      std::memcmp(c_percall.data(), c_plan.data(), c_percall.bytes()) != 0) {
    std::fprintf(stderr,
                 "FATAL: plan reuse changed the output (sim %.17g vs %.17g)\n",
                 sim_percall, sim_plan);
    return 1;
  }

  const double speedup = plan_seconds > 0.0 ? percall_seconds / plan_seconds : 0.0;
  std::printf("  per-call planning : %8.3f s host wall\n", percall_seconds);
  std::printf("  plan reuse        : %8.3f s host wall\n", plan_seconds);
  std::printf("  speedup           : %8.2fx (simulated output identical: %.6g s)\n",
              speedup, sim_plan);

  if (!json_path.empty()) {
    BenchJson json;
    json.Add("plan_reuse", "per_call_wall_seconds", percall_seconds);
    json.Add("plan_reuse", "plan_reuse_wall_seconds", plan_seconds);
    json.Add("plan_reuse", "speedup", speedup);
    json.Add("plan_reuse", "iterations", kIterations);
    json.Add("plan_reuse", "simulated_phase_seconds", sim_plan);
    if (!json.WriteFile(json_path)) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace omega::bench

int main(int argc, char** argv) { return omega::bench::Main(argc, argv); }
