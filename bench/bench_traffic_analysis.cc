// Traffic profile analysis — the reproduction of the paper's §III-D VTune
// measurement: "the portion of the average remote access is more than 43%"
// for the EaTA+WoFP configuration without NaDP, which motivates NaDP.
//
// For each configuration, one SpMM runs on every evaluated graph and the
// DRAM/PM byte counters are broken down by locality and tier.

#include "bench_util.h"
#include "common/string_util.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"

int main() {
  using namespace omega;
  using memsim::Locality;
  using memsim::Tier;
  bench::Env env = bench::MakeEnv(30);
  engine::PrintExperimentHeader(
      "Traffic analysis (VTune analogue, SpMM, 30 threads)",
      "remote-access fraction with and without NaDP");

  engine::TablePrinter table({"Graph", "config", "remote %", "DRAM bytes",
                              "PM bytes", "simulated time"});
  std::vector<double> remote_without;
  std::vector<double> remote_with;
  for (const std::string& name : {std::string("PK"), std::string("LJ"),
                                  std::string("OR"), std::string("TW"),
                                  std::string("TW-2010")}) {
    const graph::Graph g = bench::LoadGraphOrDie(name);
    const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(g);
    const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 32, 59);
    for (bool nadp : {false, true}) {
      numa::NadpOptions opts;
      opts.num_threads = 30;
      opts.enabled = nadp;
      linalg::DenseMatrix c(a.num_rows(), 32);
      env.ms->ResetTraffic();
      const auto result =
          numa::NadpSpmm(a, b, &c, opts, env.Context());
      const auto traffic = env.ms->Traffic();
      const double remote = traffic.RemoteFraction() * 100.0;
      (nadp ? remote_with : remote_without).push_back(remote);
      table.AddRow({name, nadp ? "OMeGa (NaDP)" : "OMeGa-w/o-NaDP",
                    FormatDouble(remote, 1) + "%",
                    HumanBytes(traffic.TierBytes(Tier::kDram)),
                    HumanBytes(traffic.TierBytes(Tier::kPm)),
                    HumanSeconds(result.phase_seconds)});
    }
  }
  table.Print();

  auto mean = [](const std::vector<double>& v) {
    double s = 0.0;
    for (double x : v) s += x;
    return s / v.size();
  };
  std::printf(
      "\naverage remote fraction: %.1f%% without NaDP (paper: >43%%), "
      "%.1f%% with NaDP\n",
      mean(remote_without), mean(remote_with));

  // Per-phase attribution of a full OMeGa run: where the bytes and the
  // simulated seconds go, end to end, on one mid-size graph.
  const graph::Graph tw = bench::LoadGraphOrDie("TW");
  env.ms->ResetTraffic();
  const auto options = bench::DefaultOptions(engine::SystemKind::kOmega, 30);
  auto report = engine::RunEmbedding(tw, "TW", options, env.TracedContext());
  if (report.ok()) {
    std::printf("\nper-phase attribution (OMeGa end-to-end on TW):\n");
    bench::PrintPhaseTable(report.value());
  }
  return 0;
}
