// Fig. 17 reproduction: scalability of OMeGa.
//   (a) overall and SpMM runtime vs thread count on soc-LiveJournal;
//   (b) overall and SpMM runtime vs synthetic R-MAT graph size at 30 threads.
//
// Shapes to check: near-linear decrease with threads (a); robust growth with
// graph size across sparse and dense structures (b). The paper sweeps to
// 1e9 nodes on the real machine; the sweep here covers the same decades on
// the ~1/1000-scale analogue machine.

#include "bench_util.h"
#include "common/string_util.h"
#include "graph/rmat.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"

int main() {
  using namespace omega;
  bench::Env env = bench::MakeEnv(36);

  // --- (a) thread scaling ----------------------------------------------------
  engine::PrintExperimentHeader("Fig. 17a",
                                "runtime vs #threads on LJ (overall + SpMM)");
  const graph::Graph lj = bench::LoadGraphOrDie("LJ");
  const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(lj);
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 32, 41);
  engine::TablePrinter threads_table({"threads", "overall", "SpMM", "speedup vs 4"});
  double base_overall = 0.0;
  for (int threads : {4, 8, 12, 18, 24, 30, 36}) {
    auto options = bench::DefaultOptions(engine::SystemKind::kOmega, threads);
    const auto report =
        engine::RunEmbedding(lj, "LJ", options, env.Context());
    linalg::DenseMatrix c(a.num_rows(), 32);
    numa::NadpOptions nadp;
    nadp.num_threads = threads;
    const double spmm =
        numa::NadpSpmm(a, b, &c, nadp, env.Context()).phase_seconds;
    const double overall = report.value().total_seconds;
    if (threads == 4) base_overall = overall;
    threads_table.AddRow({std::to_string(threads), HumanSeconds(overall),
                          HumanSeconds(spmm), bench::Ratio(base_overall, overall)});
  }
  threads_table.Print();
  std::printf("(paper: running time decreases linearly with threads)\n");

  // --- (b) graph-size scaling -------------------------------------------------
  engine::PrintExperimentHeader(
      "Fig. 17b", "runtime vs R-MAT graph size at 30 threads (overall + SpMM)");
  engine::TablePrinter size_table({"nodes", "arcs", "overall", "SpMM"});
  for (uint32_t scale : {10, 11, 12, 13, 14, 15, 16}) {
    graph::RmatParams params;
    params.scale = scale;
    params.num_edges = (uint64_t{1} << scale) * 16;  // mean degree ~32
    params.seed = 1700 + scale;
    const graph::Graph g = graph::GenerateRmat(params).value();
    auto options = bench::DefaultOptions(engine::SystemKind::kOmega, 30);
    const auto report =
        engine::RunEmbedding(g, "rmat", options, env.Context());
    const graph::CsdbMatrix m = graph::CsdbMatrix::FromGraph(g);
    const linalg::DenseMatrix dense =
        linalg::GaussianMatrix(m.num_cols(), 32, scale);
    linalg::DenseMatrix c(m.num_rows(), 32);
    numa::NadpOptions nadp;
    nadp.num_threads = 30;
    const double spmm = numa::NadpSpmm(m, dense, &c, nadp, env.Context())
                            .phase_seconds;
    size_table.AddRow({std::to_string(g.num_nodes()),
                       std::to_string(g.num_arcs()),
                       report.ok() ? HumanSeconds(report.value().total_seconds)
                                   : std::string("OOM"),
                       HumanSeconds(spmm)});
  }
  size_table.Print();
  std::printf("(paper: OMeGa scales through the billion-node RMAT range; the\n"
              " sweep here covers the same decades at analogue scale)\n");
  return 0;
}
