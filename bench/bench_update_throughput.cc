// Dynamic-graph update throughput: op-log ingestion + CSDB delta overlay +
// incremental Chebyshev refresh, priced against the two static alternatives:
//
//   full retrain     — rebuild the graph formats and rerun the whole ProNE
//                      pipeline (tSVD + propagation): the train report's
//                      end-to-end simulated seconds;
//   full recompute   — apply the delta but refresh every embedding row
//                      (refresh_all_rows): the stale-basis full propagation.
//
// Every batch is applied to two embedders in lockstep — selective refresh vs
// refresh_all — and the embeddings are asserted byte-identical after each
// batch (the ball_k confinement argument, enforced at run time).
//
// The filter order is swept (2 and 3, vs the Fig. 12 default 8) because it
// decides the refresh's reach: an order-K filter must recompute ball_{K-1} of
// the touched nodes, and on these R-MAT analogues (avg degree ~28) the 2-hop
// ball already covers >80% of the graph, so K >= 3 saturates and *any* exact
// incremental scheme degenerates to full propagation (it still wins ~3x by
// skipping the tSVD). K = 2 keeps the refresh inside the 1-hop ball, where
// delta apply + incremental refresh beats full rebuild + retrain by >5x;
// DESIGN.md discusses the trade-off.
//
// Usage: bench_update_throughput [--smoke] [--bench-json=PATH]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "graph/mutable_graph.h"
#include "omega/incremental.h"
#include "omega/report.h"

namespace omega::bench {
namespace {

int Main(int argc, char** argv) {
  const std::string json_path = BenchJsonPathFromArgs(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  std::vector<std::string> graphs = {"PK", "LJ"};
  std::vector<int> orders = {2, 3};
  std::vector<size_t> batches = {1, 4, 16, 64};
  if (smoke) {
    graphs = {"PK"};
    orders = {2};
    batches = {1, 4};
  }

  Env env = MakeEnv();
  BenchJson json;
  std::printf("%s", engine::ExperimentHeaderString(
                        "update throughput",
                        "oplog + CSDB delta + incremental refresh vs "
                        "full retrain")
                        .c_str());

  for (const std::string& name : graphs) {
    const graph::Graph base = LoadGraphOrDie(name);
    const double num_edges = static_cast<double>(base.num_arcs()) / 2.0;
    for (const int order : orders) {
    const graph::Graph& g = base;

    engine::EngineOptions options =
        DefaultOptions(engine::SystemKind::kOmega, env.threads);
    options.prone.chebyshev_order = order;

    engine::DynamicEmbedder incremental(g, options, name, env.threads);
    engine::DynamicEmbedder full(g, options, name, env.threads);
    if (const Status st = incremental.Train(env.Context()); !st.ok()) {
      std::fprintf(stderr, "train failed on %s: %s\n", name.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    if (const Status st = full.Train(env.Context()); !st.ok()) {
      std::fprintf(stderr, "train failed on %s: %s\n", name.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    const double retrain_seconds = incremental.train_report().total_seconds;
    std::printf("\n%s: %u nodes, %.0f edges, cheb order %d, full retrain %s\n",
                name.c_str(), g.num_nodes(), num_edges, order,
                HumanSeconds(retrain_seconds).c_str());

    engine::TablePrinter table({"batch", "edges %", "applied", "touched",
                                "affected", "aff %", "update sim s", "ops/s",
                                "vs retrain", "vs recompute", "drift"});
    uint64_t seed = 7001;
    for (const size_t batch : batches) {
      // Same mutation stream into both embedders (their graphs are in
      // lockstep, so generating against either snapshot is equivalent).
      const std::vector<graph::Mutation> muts =
          graph::SyntheticMutations(incremental.graph(), batch, seed++);
      for (size_t i = 0; i < muts.size(); ++i) {
        incremental.Log(static_cast<int>(i), muts[i]);
        full.Log(static_cast<int>(i), muts[i]);
      }
      const linalg::DenseMatrix before = incremental.embedding();
      auto inc = incremental.Refresh(env.Context());
      auto all = full.Refresh(env.Context(), /*refresh_all_rows=*/true);
      if (!inc.ok() || !all.ok()) {
        std::fprintf(stderr, "refresh failed on %s\n", name.c_str());
        return 1;
      }
      // Run-time proof of the ball_k confinement argument: the selective
      // refresh must match the full stale-basis recompute byte for byte.
      if (std::memcmp(incremental.embedding().data(), full.embedding().data(),
                      incremental.embedding().bytes()) != 0) {
        std::fprintf(stderr,
                     "FATAL: incremental refresh diverged from full recompute "
                     "on %s (batch %zu)\n",
                     name.c_str(), batch);
        return 1;
      }
      const engine::RefreshReport& r = inc.value();
      // Mean L2 displacement of the refreshed rows — how much embedding the
      // update actually moved (staleness served between mutation and refresh).
      double drift = 0.0;
      for (const graph::NodeId v : r.refreshed_nodes) {
        double d2 = 0.0;
        for (size_t c = 0; c < before.cols(); ++c) {
          const double dv = static_cast<double>(incremental.embedding().At(v, c)) -
                            static_cast<double>(before.At(v, c));
          d2 += dv * dv;
        }
        drift += std::sqrt(d2);
      }
      if (!r.refreshed_nodes.empty()) {
        drift /= static_cast<double>(r.refreshed_nodes.size());
      }

      const double ops = r.total_seconds > 0.0
                             ? static_cast<double>(r.mutations_applied) /
                                   r.total_seconds
                             : 0.0;
      const double affected_pct =
          100.0 * static_cast<double>(r.affected_rows) / g.num_nodes();
      table.AddRow({std::to_string(batch),
                    FormatDouble(100.0 * batch / num_edges, 3),
                    std::to_string(r.mutations_applied),
                    std::to_string(r.touched_nodes),
                    std::to_string(r.affected_rows),
                    FormatDouble(affected_pct, 1),
                    FormatDouble(r.total_seconds, 6), FormatDouble(ops, 0),
                    Ratio(retrain_seconds, r.total_seconds),
                    Ratio(all.value().total_seconds, r.total_seconds),
                    FormatDouble(drift, 4)});

      const std::string entry =
          name + ".k" + std::to_string(order) + ".batch" + std::to_string(batch);
      json.Add(entry, "chebyshev_order", static_cast<double>(order));
      json.Add(entry, "batch_mutations", static_cast<double>(batch));
      json.Add(entry, "applied", static_cast<double>(r.mutations_applied));
      json.Add(entry, "touched_nodes", static_cast<double>(r.touched_nodes));
      json.Add(entry, "affected_rows", static_cast<double>(r.affected_rows));
      json.Add(entry, "affected_fraction",
               static_cast<double>(r.affected_rows) / g.num_nodes());
      json.Add(entry, "update_sim_seconds", r.total_seconds);
      json.Add(entry, "sync_sim_seconds", r.sync_seconds);
      json.Add(entry, "delta_sim_seconds", r.delta_seconds);
      json.Add(entry, "refresh_sim_seconds", r.refresh_seconds);
      json.Add(entry, "update_ops_per_sec", ops);
      json.Add(entry, "retrain_sim_seconds", retrain_seconds);
      json.Add(entry, "speedup_vs_retrain",
               r.total_seconds > 0.0 ? retrain_seconds / r.total_seconds : 0.0);
      json.Add(entry, "speedup_vs_full_recompute",
               r.total_seconds > 0.0
                   ? all.value().total_seconds / r.total_seconds
                   : 0.0);
      json.Add(entry, "mean_row_drift", drift);
    }
    std::printf("%s", table.ToString().c_str());
    }
  }

  if (!json_path.empty() && !json.WriteFile(json_path)) return 1;
  return 0;
}

}  // namespace
}  // namespace omega::bench

int main(int argc, char** argv) { return omega::bench::Main(argc, argv); }
