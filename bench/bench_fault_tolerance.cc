// Fault-tolerance sweep: how each system family absorbs injected faults
// across the memory hierarchy. For every named fault profile, the harness
// runs a representative set of systems on PK and reports the simulated
// runtime, the slowdown against the fault-free run, and the fault/recovery
// accounting (injected = retried + degraded + surfaced).
//
// Shapes to check:
//   * profile "none" matches the seed simulation exactly (no fault charges);
//   * the pm profiles charge OMeGa and ProNE-HM only; ProNE-HM's staging
//     read rides on bounded retries alone, so sustained PM media rates turn
//     its cell into ERR (surfaced IOError) where OMeGa's ASL degrades to
//     semi-external streaming instead — fault_test.cc pins that contrast;
//   * worn-ssd slows the out-of-core system but never fails it;
//   * flaky-net only affects the distributed analogue, and every timeout is
//     absorbed by a local-replica retry (retried == injected).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "memsim/fault.h"

int main(int argc, char** argv) {
  using namespace omega;
  const std::string json_path = bench::BenchJsonPathFromArgs(&argc, argv);
  bench::Env env = bench::MakeEnv(36);
  engine::PrintExperimentHeader(
      "Fault tolerance", "recovery behavior under injected fault profiles");

  const std::vector<engine::SystemKind> systems = {
      engine::SystemKind::kOmega,
      engine::SystemKind::kProneHm,
      engine::SystemKind::kGinex,
      engine::SystemKind::kDistDgl,
  };
  const std::vector<std::string> profiles = {"none", "pm-stall", "pm-degraded",
                                             "worn-ssd", "flaky-net"};

  const graph::Graph g = bench::LoadGraphOrDie("PK");
  bench::BenchJson json;

  for (auto system : systems) {
    engine::TablePrinter table(
        {"profile", "total", "slowdown", "fault accounting"});
    double baseline_seconds = 0.0;
    for (const std::string& profile : profiles) {
      auto plan = memsim::FaultPlanFromProfile(profile);
      if (!plan.ok()) {
        std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
        return 1;
      }
      env.ms->SetFaultPlan(plan.value());
      const auto options = bench::DefaultOptions(system, env.threads);
      auto report = engine::RunEmbedding(g, "PK", options, env.Context());
      if (!report.ok()) {
        // Surfaced fault (or OOM): the system could not complete under this
        // profile — the contrast the harness exists to show.
        table.AddRow({profile, "ERR", "-",
                      "surfaced: " + report.status().ToString()});
        continue;
      }
      const double seconds = report.value().total_seconds;
      if (profile == "none") baseline_seconds = seconds;
      table.AddRow({profile, HumanSeconds(seconds),
                    bench::Ratio(seconds, baseline_seconds),
                    memsim::FaultCountersSummary(report.value().faults)});
      json.Add(std::string(engine::SystemName(system)) + "/" + profile,
               "total_seconds", seconds);
      json.Add(std::string(engine::SystemName(system)) + "/" + profile,
               "injected", static_cast<double>(
                   report.value().faults.InjectedTotal()));
    }
    std::printf("\n%s on PK:\n", engine::SystemName(system));
    table.Print();
  }
  env.ms->SetFaultPlan(memsim::FaultPlan{});  // leave the env clean

  if (!json_path.empty() && !json.WriteFile(json_path)) return 1;
  return 0;
}
