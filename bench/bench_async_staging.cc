// Async double-buffered staging: how much of the PM->DRAM gap does it close?
//
// For every Table I graph this harness runs heterogeneous OMeGa with
// synchronous staging (the default), with --async-staging (partition fetches
// and dense-stage streams overlapped with compute through the shared
// BufferManager), and the DRAM-resident ideal. The headline metric is
//
//   gap closed = (sync - async) / (sync - dram)
//
// i.e. the fraction of the remaining distance to OMeGa-DRAM that overlapped
// staging recovers, plus the per-run overlap efficiency (hidden / issued
// staging-fetch seconds, aggregated over phases). TW-2010 and FR have no
// DRAM-resident bar (Fig. 12 OOM), so they report only the async speedup.

#include "bench_util.h"
#include "common/string_util.h"

int main(int argc, char** argv) {
  using namespace omega;
  const std::string json_path = bench::BenchJsonPathFromArgs(&argc, argv);
  engine::PrintExperimentHeader(
      "Async staging", "overlapped PM->DRAM staging vs sync vs DRAM ideal");

  bench::Env env = bench::MakeEnv();
  bench::BenchJson json;
  engine::TablePrinter table({"Graph", "sync", "async", "OMeGa-DRAM",
                              "gap closed", "overlap eff"});
  for (const std::string& name : bench::AllGraphNames()) {
    const graph::Graph g = bench::LoadGraphOrDie(name);

    auto sync_opts = bench::DefaultOptions(engine::SystemKind::kOmega,
                                           env.threads);
    auto async_opts = sync_opts;
    async_opts.features.async_staging = true;
    const auto dram_opts =
        bench::DefaultOptions(engine::SystemKind::kOmegaDram, env.threads);

    const auto sync_run = engine::RunEmbedding(g, name, sync_opts, env.Context());
    const auto async_run =
        engine::RunEmbedding(g, name, async_opts, env.Context());
    if (!sync_run.ok() || !async_run.ok()) {
      table.AddRow({name, "ERR", "ERR", "-", "-", "-"});
      continue;
    }
    const double sync_s = sync_run.value().total_seconds;
    const double async_s = async_run.value().total_seconds;
    if (bench::PhaseTraceEnabled()) bench::PrintPhaseTable(async_run.value());

    // Aggregate overlap efficiency over the async run's phases.
    double fetch = 0.0;
    double hidden = 0.0;
    for (const exec::PhaseRecord& p : async_run.value().phases) {
      fetch += p.fetch_seconds;
      hidden += p.hidden_seconds;
    }
    const double overlap_eff = fetch > 0.0 ? hidden / fetch : 0.0;

    json.Add(name, "sync_seconds", sync_s);
    json.Add(name, "async_seconds", async_s);
    json.Add(name, "overlap_efficiency", overlap_eff);

    const auto dram_run = engine::RunEmbedding(g, name, dram_opts, env.Context());
    std::string dram_cell = "OOM";
    std::string gap_cell = "-";
    if (dram_run.ok()) {
      const double dram_s = dram_run.value().total_seconds;
      dram_cell = HumanSeconds(dram_s);
      if (sync_s > dram_s) {
        const double gap_closed = (sync_s - async_s) / (sync_s - dram_s);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f%%", gap_closed * 100.0);
        gap_cell = buf;
        json.Add(name, "dram_seconds", dram_s);
        json.Add(name, "gap_closed", gap_closed);
      }
    }
    char eff[32];
    std::snprintf(eff, sizeof(eff), "%.1f%%", overlap_eff * 100.0);
    table.AddRow({name, HumanSeconds(sync_s), HumanSeconds(async_s), dram_cell,
                  gap_cell, eff});
  }
  table.Print();
  std::printf(
      "\nshape: overlapped staging recovers well over 40%% of each graph's\n"
      "remaining distance to the DRAM-resident ideal; TW-2010/FR (no DRAM\n"
      "bar) still gain the async speedup outright.\n");
  if (!json_path.empty() && json.WriteFile(json_path)) {
    std::printf("bench json written to %s\n", json_path.c_str());
  }
  return 0;
}
