// Shared plumbing for the per-table/figure benchmark harnesses.

#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "graph/csdb.h"
#include "graph/datasets.h"
#include "memsim/memory_system.h"
#include "omega/engine.h"
#include "omega/exec_context.h"
#include "omega/report.h"

namespace omega::bench {

/// Simulated machine + worker pool for one harness run.
struct Env {
  std::unique_ptr<memsim::MemorySystem> ms;
  std::unique_ptr<ThreadPool> pool;
  std::unique_ptr<exec::TraceRecorder> trace;
  int threads = 36;

  /// Bundled plumbing for the engine entry points (trace not attached; the
  /// engines record phases into their RunReport regardless).
  exec::Context Context() const {
    return exec::Context(ms.get(), pool.get(), threads);
  }

  /// Same plumbing with the env's recorder attached as the trace sink.
  exec::Context TracedContext() const { return Context().WithTrace(trace.get()); }
};

/// Default environment: the paper's 36-thread two-socket testbed.
Env MakeEnv(int threads = 36);

/// The six Table I dataset short names, in paper order.
const std::vector<std::string>& AllGraphNames();

/// Loads a dataset analogue; aborts with a message on failure.
graph::Graph LoadGraphOrDie(const std::string& name);

/// Engine options matching the harness defaults (d = 32).
engine::EngineOptions DefaultOptions(engine::SystemKind system, int threads);

/// "3.45x" (ratio of a over b); "-" if b is 0.
std::string Ratio(double a, double b);

/// p in [0, 100]; linear interpolation.
double Percentile(std::vector<double> values, double p);

/// Population standard deviation.
double StdDev(const std::vector<double>& values);

/// Per-phase attribution table of one run: phase name, simulated seconds,
/// per-tier byte counts, and remote fraction. Empty string when the report
/// carries no phases.
std::string PhaseTableString(const engine::RunReport& report);

/// Prints PhaseTableString to stdout.
void PrintPhaseTable(const engine::RunReport& report);

/// The complete Fig. 12 harness output (header, optional per-run phase
/// tables when OMEGA_PHASE_TRACE=1, the runtime table, and the speedup
/// footer) as one string. bench_fig12_overall prints exactly this; the
/// golden test pins its MD5 so charge-order regressions fail CI.
std::string Fig12OverallReport(Env& env);

/// True when OMEGA_PHASE_TRACE=1 in the environment: the engine harnesses
/// print PrintPhaseTable after each run.
bool PhaseTraceEnabled();

/// Host wall-clock stopwatch (steady_clock). Measures the harness's real
/// time, as opposed to the memsim-simulated seconds the tables report.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates named host-side measurements and writes them as one JSON
/// object (entry name -> {metric: value}) — the BENCH_*.json files CI and the
/// perf-tracking scripts consume.
class BenchJson {
 public:
  void Add(const std::string& entry, const std::string& metric, double value);

  bool empty() const { return entries_.empty(); }

  /// Writes the collected entries to `path`. Returns false (with a message on
  /// stderr) when the file cannot be written.
  bool WriteFile(const std::string& path) const;

 private:
  // Insertion-ordered: (entry, [(metric, value)...]).
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, double>>>> entries_;
};

/// Extracts `--bench-json=<path>` from argv (compacting argv in place) so a
/// harness can accept it alongside other flags. Returns the path or "".
std::string BenchJsonPathFromArgs(int* argc, char** argv);

/// Paper-reported Table II runtimes (seconds) for comparison columns.
struct TableTwoRef {
  const char* graph;
  double rr;
  double wata;
  double eata;
};
const std::vector<TableTwoRef>& PaperTableTwo();

}  // namespace omega::bench
