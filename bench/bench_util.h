// Shared plumbing for the per-table/figure benchmark harnesses.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "graph/csdb.h"
#include "graph/datasets.h"
#include "memsim/memory_system.h"
#include "omega/engine.h"
#include "omega/report.h"

namespace omega::bench {

/// Simulated machine + worker pool for one harness run.
struct Env {
  std::unique_ptr<memsim::MemorySystem> ms;
  std::unique_ptr<ThreadPool> pool;
  int threads = 36;
};

/// Default environment: the paper's 36-thread two-socket testbed.
Env MakeEnv(int threads = 36);

/// The six Table I dataset short names, in paper order.
const std::vector<std::string>& AllGraphNames();

/// Loads a dataset analogue; aborts with a message on failure.
graph::Graph LoadGraphOrDie(const std::string& name);

/// Engine options matching the harness defaults (d = 32).
engine::EngineOptions DefaultOptions(engine::SystemKind system, int threads);

/// "3.45x" (ratio of a over b); "-" if b is 0.
std::string Ratio(double a, double b);

/// p in [0, 100]; linear interpolation.
double Percentile(std::vector<double> values, double p);

/// Population standard deviation.
double StdDev(const std::vector<double>& values);

/// Paper-reported Table II runtimes (seconds) for comparison columns.
struct TableTwoRef {
  const char* graph;
  double rr;
  double wata;
  double eata;
};
const std::vector<TableTwoRef>& PaperTableTwo();

}  // namespace omega::bench
