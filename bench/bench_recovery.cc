// Recovery-cost sweep: what crash consistency costs, and how recovery time
// scales with the checkpoint cadence.
//
// Panel 1 (single machine): OMeGa on PK with the PM checkpoint store at
// cadence 1/2/4/8 terms — the checkpoint-write overhead against the plain
// run, plus the restore cost after a simulated kill mid-propagation.
//
// Panel 2 (distributed): DistDGL's durable round-structured sync with a
// machine killed late in the run. The killed machine restores its last PM
// checkpoint and replays the replicated shared log past its watermark, so a
// sparser cadence means a longer replay: recovery time grows with the
// records accumulated since the last checkpoint while the steady-state
// checkpoint cost shrinks — the classic cadence trade-off the JSON records.
//
// Flags: --smoke (CI-sized cadence set), --bench-json=<path>.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/string_util.h"
#include "durable/checkpoint.h"
#include "memsim/fault.h"
#include "omega/distributed_sim.h"

int main(int argc, char** argv) {
  using namespace omega;
  const std::string json_path = bench::BenchJsonPathFromArgs(&argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::Env env = bench::MakeEnv(36);
  engine::PrintExperimentHeader(
      "Recovery", "checkpoint cadence vs crash-recovery cost");

  const graph::Graph g = bench::LoadGraphOrDie("PK");
  const std::vector<uint64_t> cadences =
      smoke ? std::vector<uint64_t>{1, 4} : std::vector<uint64_t>{1, 2, 4, 8};
  bench::BenchJson json;

  // --- Panel 1: engine checkpointing + restore ----------------------------
  const auto base_options =
      bench::DefaultOptions(engine::SystemKind::kOmega, env.threads);
  auto plain = engine::RunEmbedding(g, "PK", base_options, env.Context());
  if (!plain.ok()) {
    std::fprintf(stderr, "%s\n", plain.status().ToString().c_str());
    return 1;
  }
  const double plain_seconds = plain.value().total_seconds;

  engine::TablePrinter engine_table(
      {"cadence", "total", "ckpt cost", "overhead", "restore cost"});
  for (uint64_t every : cadences) {
    durable::CheckpointStore store(env.ms.get(), durable::CheckpointOptions{});
    engine::EngineOptions options = base_options;
    options.durability.store = &store;
    options.durability.checkpoint_every = every;

    auto durable_run = engine::RunEmbedding(g, "PK", options, env.Context());
    if (!durable_run.ok()) {
      std::fprintf(stderr, "%s\n", durable_run.status().ToString().c_str());
      return 1;
    }
    const double total = durable_run.value().total_seconds;
    const double ckpt = durable_run.value().ckpt_seconds;

    // Kill mid-propagation, then restore from the store and finish.
    durable::CheckpointStore crash_store(env.ms.get(),
                                         durable::CheckpointOptions{});
    engine::EngineOptions crash = options;
    crash.durability.store = &crash_store;
    crash.durability.crash_after_phase = "term.3";
    auto killed = engine::RunEmbedding(g, "PK", crash, env.Context());
    if (killed.ok() || !durable::IsKilledError(killed.status())) {
      std::fprintf(stderr, "expected a simulated kill at term.3\n");
      return 1;
    }
    engine::EngineOptions resume = options;
    resume.durability.store = &crash_store;
    resume.durability.restore = true;
    auto resumed = engine::RunEmbedding(g, "PK", resume, env.Context());
    if (!resumed.ok()) {
      std::fprintf(stderr, "%s\n", resumed.status().ToString().c_str());
      return 1;
    }
    const double restore = resumed.value().recovery_seconds;

    const std::string entry = "engine/every=" + std::to_string(every);
    engine_table.AddRow({std::to_string(every), HumanSeconds(total),
                         HumanSeconds(ckpt), bench::Ratio(total, plain_seconds),
                         HumanSeconds(restore)});
    json.Add(entry, "total_seconds", total);
    json.Add(entry, "ckpt_seconds", ckpt);
    json.Add(entry, "restore_seconds", restore);
  }
  std::printf("\nOMeGa on PK (plain run %s), kill at term.3:\n",
              HumanSeconds(plain_seconds).c_str());
  engine_table.Print();

  // --- Panel 2: distributed recovery vs cadence ---------------------------
  const auto dist_options =
      bench::DefaultOptions(engine::SystemKind::kDistDgl, env.threads);
  const std::vector<int> dist_cadences =
      smoke ? std::vector<int>{1, 8} : std::vector<int>{1, 2, 4, 8, 16};

  engine::TablePrinter dist_table(
      {"cadence (rounds)", "total", "ckpt cost", "recovery", "accounting"});
  for (int every : dist_cadences) {
    memsim::FaultPlan plan;
    plan.enabled = true;
    plan.kills = {{0, 22}};  // kill machine 0 late: 24 DGL sync rounds
    env.ms->SetFaultPlan(plan);
    engine::DistParams params;
    params.checkpoint_every_rounds = every;
    auto report = engine::RunDistributedFamily(g, "PK", dist_options,
                                               env.Context(), params);
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    const engine::RunReport& r = report.value();
    const std::string entry = "dist/every=" + std::to_string(every);
    dist_table.AddRow({std::to_string(every), HumanSeconds(r.total_seconds),
                       HumanSeconds(r.ckpt_seconds),
                       HumanSeconds(r.recovery_seconds),
                       memsim::FaultCountersSummary(r.faults)});
    json.Add(entry, "total_seconds", r.total_seconds);
    json.Add(entry, "ckpt_seconds", r.ckpt_seconds);
    json.Add(entry, "recovery_seconds", r.recovery_seconds);
  }
  env.ms->SetFaultPlan(memsim::FaultPlan{});  // leave the env clean
  std::printf("\nDistDGL on PK, machine 0 killed at sync round 22:\n");
  dist_table.Print();
  std::printf(
      "\nSparser checkpoints replay a longer log suffix on recovery;\n"
      "denser checkpoints pay more steady-state PM writes.\n");

  if (!json_path.empty() && !json.WriteFile(json_path)) return 1;
  return 0;
}
