// Fig. 15 reproduction: the effect of NaDP.
//   (a) overall embedding runtime: OMeGa vs OMeGa-w/o-NaDP (OS Interleave)
//       vs the OMeGa-DRAM ideal, on the five graphs the paper plots;
//   (b) single-SpMM runtime for the same three configurations.
//
// Shapes to check: NaDP accelerates consistently (paper: 1.95x overall,
// 2.42-3.59x on SpMM) and narrows the gap to the DRAM ideal.

#include "bench_util.h"
#include "common/string_util.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"

int main() {
  using namespace omega;
  using bench::Ratio;
  bench::Env env = bench::MakeEnv(36);
  const std::vector<std::string> graphs = {"PK", "LJ", "OR", "TW", "TW-2010"};

  // --- (a) overall -----------------------------------------------------------
  engine::PrintExperimentHeader(
      "Fig. 15a", "overall runtime: OMeGa vs w/o-NaDP vs DRAM ideal");
  engine::TablePrinter overall({"Graph", "OMeGa-w/o-NaDP", "OMeGa", "OMeGa-DRAM",
                                "NaDP speedup"});
  std::vector<double> overall_speedups;
  for (const std::string& name : graphs) {
    const graph::Graph g = bench::LoadGraphOrDie(name);
    auto omega_opts = bench::DefaultOptions(engine::SystemKind::kOmega, env.threads);
    auto no_nadp_opts = omega_opts;
    no_nadp_opts.features.use_nadp = false;
    auto dram_opts =
        bench::DefaultOptions(engine::SystemKind::kOmegaDram, env.threads);

    const auto with =
        engine::RunEmbedding(g, name, omega_opts, env.Context());
    const auto without =
        engine::RunEmbedding(g, name, no_nadp_opts, env.Context());
    const auto dram =
        engine::RunEmbedding(g, name, dram_opts, env.Context());
    const double t_with = with.value().total_seconds;
    const double t_without = without.value().total_seconds;
    overall_speedups.push_back(t_without / t_with);
    overall.AddRow({name, HumanSeconds(t_without), HumanSeconds(t_with),
                    dram.ok() ? HumanSeconds(dram.value().total_seconds)
                              : std::string("OOM"),
                    Ratio(t_without, t_with)});
  }
  overall.Print();
  std::printf("geomean NaDP overall speedup: %.2fx (paper: 1.95x)\n",
              engine::GeometricMean(overall_speedups));

  // --- (b) single SpMM -------------------------------------------------------
  engine::PrintExperimentHeader("Fig. 15b",
                                "single SpMM: OMeGa vs w/o-NaDP vs DRAM ideal");
  engine::TablePrinter spmm({"Graph", "w/o-NaDP", "OMeGa", "DRAM", "NaDP speedup",
                             "gap to DRAM"});
  std::vector<double> spmm_speedups;
  for (const std::string& name : graphs) {
    const graph::Graph g = bench::LoadGraphOrDie(name);
    const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(g);
    const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 32, 29);
    linalg::DenseMatrix c(a.num_rows(), 32);

    numa::NadpOptions on;
    on.num_threads = env.threads;
    numa::NadpOptions off = on;
    off.enabled = false;
    numa::NadpOptions dram = on;
    dram.sparse_tier = memsim::Tier::kDram;
    dram.dense_tier = memsim::Tier::kDram;

    const double t_on =
        numa::NadpSpmm(a, b, &c, on, env.Context()).phase_seconds;
    const double t_off =
        numa::NadpSpmm(a, b, &c, off, env.Context()).phase_seconds;
    const double t_dram =
        numa::NadpSpmm(a, b, &c, dram, env.Context()).phase_seconds;
    spmm_speedups.push_back(t_off / t_on);
    spmm.AddRow({name, HumanSeconds(t_off), HumanSeconds(t_on),
                 HumanSeconds(t_dram), Ratio(t_off, t_on),
                 FormatDouble(100.0 * (t_on - t_dram) / t_dram, 1) + "%"});
  }
  spmm.Print();
  std::printf(
      "geomean NaDP SpMM speedup: %.2fx (paper: 2.42-3.59x; gap to DRAM "
      "40.17%% average)\n",
      engine::GeometricMean(spmm_speedups));
  return 0;
}
