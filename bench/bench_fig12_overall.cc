// Fig. 12 reproduction: end-to-end embedding time of OMeGa against the six
// alternatives (OMeGa-DRAM ideal, OMeGa-PM worst, ProNE-DRAM, ProNE-HM,
// Ginex, MariusGNN) on all six dataset analogues.
//
// Shapes to check against the paper:
//   * DRAM-only systems (OMeGa-DRAM, ProNE-DRAM) OOM on TW-2010 and FR;
//   * OMeGa beats ProNE-HM by a large factor and ProNE-DRAM end-to-end;
//   * OMeGa-PM is the slowest runnable configuration;
//   * OMeGa sits close behind the OMeGa-DRAM ideal (paper: gap ~54.9%);
//   * the SSD systems trail OMeGa, Ginex behind MariusGNN.
//
// The body lives in bench::Fig12OverallReport so the golden test can pin the
// exact output bytes.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace omega;
  bench::Env env = bench::MakeEnv(36);
  std::fputs(bench::Fig12OverallReport(env).c_str(), stdout);
  return 0;
}
