// Fig. 12 reproduction: end-to-end embedding time of OMeGa against the six
// alternatives (OMeGa-DRAM ideal, OMeGa-PM worst, ProNE-DRAM, ProNE-HM,
// Ginex, MariusGNN) on all six dataset analogues.
//
// Shapes to check against the paper:
//   * DRAM-only systems (OMeGa-DRAM, ProNE-DRAM) OOM on TW-2010 and FR;
//   * OMeGa beats ProNE-HM by a large factor and ProNE-DRAM end-to-end;
//   * OMeGa-PM is the slowest runnable configuration;
//   * OMeGa sits close behind the OMeGa-DRAM ideal (paper: gap ~54.9%);
//   * the SSD systems trail OMeGa, Ginex behind MariusGNN.

#include "bench_util.h"
#include "common/string_util.h"

int main() {
  using namespace omega;
  bench::Env env = bench::MakeEnv(36);
  engine::PrintExperimentHeader("Fig. 12",
                                "overall runtime, OMeGa vs six competitors");

  const std::vector<engine::SystemKind> systems = {
      engine::SystemKind::kOmega,     engine::SystemKind::kOmegaDram,
      engine::SystemKind::kOmegaPm,   engine::SystemKind::kProneDram,
      engine::SystemKind::kProneHm,   engine::SystemKind::kGinex,
      engine::SystemKind::kMariusGnn,
  };

  std::vector<std::string> headers = {"Graph"};
  for (auto s : systems) headers.push_back(engine::SystemName(s));
  engine::TablePrinter table(headers);

  std::vector<double> speedups;  // competitor / OMeGa across runnable pairs
  for (const std::string& name : bench::AllGraphNames()) {
    const graph::Graph g = bench::LoadGraphOrDie(name);
    std::vector<std::string> row = {name};
    double omega_seconds = 0.0;
    for (auto system : systems) {
      const auto options = bench::DefaultOptions(system, env.threads);
      auto report = engine::RunEmbedding(g, name, options, env.Context());
      if (!report.ok()) {
        row.push_back(report.status().IsCapacityExceeded() ? "OOM" : "ERR");
        continue;
      }
      const double seconds = report.value().total_seconds;
      row.push_back(HumanSeconds(seconds));
      if (bench::PhaseTraceEnabled()) bench::PrintPhaseTable(report.value());
      if (system == engine::SystemKind::kOmega) {
        omega_seconds = seconds;
      } else if (system != engine::SystemKind::kOmegaDram && omega_seconds > 0) {
        speedups.push_back(seconds / omega_seconds);
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\naverage OMeGa speedup over runnable non-ideal competitors (geomean): "
      "%.2fx\n(paper reports 32.03x average across its baselines at full "
      "hardware scale)\n",
      engine::GeometricMean(speedups));
  return 0;
}
