// Micro benchmarks (google-benchmark) of the hot kernels and data
// structures: CSDB traversal and indexing, SpMM host kernels, the thread
// allocators, the top-M store, the entropy accumulator, and R-MAT generation.
// These measure real host time (not simulated time) — they are about the
// library's own efficiency.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graph/rmat.h"
#include "sched/entropy.h"
#include "linalg/random_matrix.h"
#include "prefetch/topm_store.h"
#include "prefetch/wofp.h"
#include "sched/allocators.h"
#include "sparse/csdb_ops.h"
#include "sparse/spmm.h"

namespace {

using namespace omega;

const graph::Graph& TestGraph() {
  static const graph::Graph kGraph = [] {
    graph::RmatParams params;
    params.scale = 13;
    params.num_edges = 200000;
    return graph::GenerateRmat(params).value();
  }();
  return kGraph;
}

const graph::CsdbMatrix& TestMatrix() {
  static const graph::CsdbMatrix kMatrix = graph::CsdbMatrix::FromGraph(TestGraph());
  return kMatrix;
}

void BM_CsdbFromGraph(benchmark::State& state) {
  const graph::Graph& g = TestGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::CsdbMatrix::FromGraph(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_CsdbFromGraph);

void BM_CsdbCursorTraversal(benchmark::State& state) {
  const graph::CsdbMatrix& m = TestMatrix();
  for (auto _ : state) {
    uint64_t sum = 0;
    for (auto cur = m.Rows(0); !cur.AtEnd(); cur.Next()) sum += cur.degree();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * m.num_rows());
}
BENCHMARK(BM_CsdbCursorTraversal);

void BM_CsdbRandomRowPtr(benchmark::State& state) {
  const graph::CsdbMatrix& m = TestMatrix();
  uint32_t r = 12345;
  for (auto _ : state) {
    r = r * 1103515245 + 12345;
    benchmark::DoNotOptimize(m.RowPtr(r % m.num_rows()));
  }
}
BENCHMARK(BM_CsdbRandomRowPtr);

void BM_ReferenceSpmm(benchmark::State& state) {
  const graph::CsdbMatrix& m = TestMatrix();
  const linalg::DenseMatrix b =
      linalg::GaussianMatrix(m.num_cols(), state.range(0), 3);
  linalg::DenseMatrix c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::ReferenceSpmm(m, b, &c));
  }
  state.SetItemsProcessed(state.iterations() * m.nnz() * state.range(0));
}
BENCHMARK(BM_ReferenceSpmm)->Arg(8)->Arg(32);

void BM_AllocatorEata(benchmark::State& state) {
  const graph::CsdbMatrix& m = TestMatrix();
  sched::AllocatorOptions opts;
  opts.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::Allocate(m, sched::AllocatorKind::kEntropyAware, opts));
  }
}
BENCHMARK(BM_AllocatorEata)->Arg(8)->Arg(36);

void BM_AllocatorWata(benchmark::State& state) {
  const graph::CsdbMatrix& m = TestMatrix();
  sched::AllocatorOptions opts;
  opts.num_threads = 36;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::Allocate(m, sched::AllocatorKind::kWorkloadBalanced, opts));
  }
}
BENCHMARK(BM_AllocatorWata);

void BM_EntropyAccumulator(benchmark::State& state) {
  for (auto _ : state) {
    sched::EntropyAccumulator acc;
    for (uint32_t d = 1; d <= 4096; ++d) acc.AddRow(d & 1023);
    benchmark::DoNotOptimize(acc.Entropy());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EntropyAccumulator);

void BM_TopMBuild(benchmark::State& state) {
  std::vector<prefetch::ScoredKey> candidates;
  Rng rng(9);
  for (int i = 0; i < 50000; ++i) {
    candidates.push_back(
        {static_cast<graph::NodeId>(i), rng.Next() % 100000});
  }
  for (auto _ : state) {
    auto copy = candidates;
    benchmark::DoNotOptimize(
        prefetch::TopMStore::Build(std::move(copy), 5000, 60000));
  }
  state.SetItemsProcessed(state.iterations() * candidates.size());
}
BENCHMARK(BM_TopMBuild);

void BM_TopMLookup(benchmark::State& state) {
  std::vector<prefetch::ScoredKey> candidates;
  for (int i = 0; i < 10000; ++i) {
    candidates.push_back({static_cast<graph::NodeId>(i * 3), uint64_t(i)});
  }
  const auto store = prefetch::TopMStore::Build(candidates, 4000, 40000);
  uint32_t key = 1;
  for (auto _ : state) {
    key = key * 1103515245 + 12345;
    benchmark::DoNotOptimize(store.Contains(key % 40000));
  }
}
BENCHMARK(BM_TopMLookup);

void BM_RmatGeneration(benchmark::State& state) {
  graph::RmatParams params;
  params.scale = 12;
  params.num_edges = 50000;
  for (auto _ : state) {
    params.seed++;
    benchmark::DoNotOptimize(graph::GenerateRmat(params));
  }
  state.SetItemsProcessed(state.iterations() * params.num_edges);
}
BENCHMARK(BM_RmatGeneration);

void BM_WofpBuild(benchmark::State& state) {
  const graph::CsdbMatrix& m = TestMatrix();
  auto ms = memsim::MemorySystem::CreateDefault();
  const auto in_degrees = prefetch::ComputeInDegrees(m);
  sched::Workload w;
  w.ranges.push_back(sched::RowRange{0, m.num_rows()});
  sched::RefreshCounts(m, &w);
  prefetch::WofpOptions opts;
  opts.charge_build = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prefetch::WofpPrefetcher::Build(m, w, in_degrees, opts, ms.get(), nullptr));
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_WofpBuild);

}  // namespace
