// Micro benchmarks (google-benchmark) of the hot kernels and data
// structures: CSDB traversal and indexing, SpMM host kernels, the thread
// allocators, the top-M store, the entropy accumulator, and R-MAT generation.
// These measure real host time (not simulated time) — they are about the
// library's own efficiency.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/rmat.h"
#include "sched/entropy.h"
#include "linalg/gemm.h"
#include "linalg/random_matrix.h"
#include "prefetch/topm_store.h"
#include "prefetch/wofp.h"
#include "sched/allocators.h"
#include "sparse/csdb_ops.h"
#include "sparse/spmm.h"
#include "sparse/spmm_kernels.h"

namespace {

using namespace omega;

const graph::Graph& TestGraph() {
  static const graph::Graph kGraph = [] {
    graph::RmatParams params;
    params.scale = 13;
    params.num_edges = 200000;
    return graph::GenerateRmat(params).value();
  }();
  return kGraph;
}

const graph::CsdbMatrix& TestMatrix() {
  static const graph::CsdbMatrix kMatrix = graph::CsdbMatrix::FromGraph(TestGraph());
  return kMatrix;
}

void BM_CsdbFromGraph(benchmark::State& state) {
  const graph::Graph& g = TestGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::CsdbMatrix::FromGraph(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_CsdbFromGraph);

void BM_CsdbCursorTraversal(benchmark::State& state) {
  const graph::CsdbMatrix& m = TestMatrix();
  for (auto _ : state) {
    uint64_t sum = 0;
    for (auto cur = m.Rows(0); !cur.AtEnd(); cur.Next()) sum += cur.degree();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * m.num_rows());
}
BENCHMARK(BM_CsdbCursorTraversal);

void BM_CsdbRandomRowPtr(benchmark::State& state) {
  const graph::CsdbMatrix& m = TestMatrix();
  uint32_t r = 12345;
  for (auto _ : state) {
    r = r * 1103515245 + 12345;
    benchmark::DoNotOptimize(m.RowPtr(r % m.num_rows()));
  }
}
BENCHMARK(BM_CsdbRandomRowPtr);

void BM_ReferenceSpmm(benchmark::State& state) {
  const graph::CsdbMatrix& m = TestMatrix();
  const linalg::DenseMatrix b =
      linalg::GaussianMatrix(m.num_cols(), state.range(0), 3);
  linalg::DenseMatrix c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::ReferenceSpmm(m, b, &c));
  }
  state.SetItemsProcessed(state.iterations() * m.nnz() * state.range(0));
}
BENCHMARK(BM_ReferenceSpmm)->Arg(8)->Arg(32);

void BM_AllocatorEata(benchmark::State& state) {
  const graph::CsdbMatrix& m = TestMatrix();
  sched::AllocatorOptions opts;
  opts.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::Allocate(m, sched::AllocatorKind::kEntropyAware, opts));
  }
}
BENCHMARK(BM_AllocatorEata)->Arg(8)->Arg(36);

void BM_AllocatorWata(benchmark::State& state) {
  const graph::CsdbMatrix& m = TestMatrix();
  sched::AllocatorOptions opts;
  opts.num_threads = 36;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::Allocate(m, sched::AllocatorKind::kWorkloadBalanced, opts));
  }
}
BENCHMARK(BM_AllocatorWata);

void BM_EntropyAccumulator(benchmark::State& state) {
  for (auto _ : state) {
    sched::EntropyAccumulator acc;
    for (uint32_t d = 1; d <= 4096; ++d) acc.AddRow(d & 1023);
    benchmark::DoNotOptimize(acc.Entropy());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_EntropyAccumulator);

void BM_TopMBuild(benchmark::State& state) {
  std::vector<prefetch::ScoredKey> candidates;
  Rng rng(9);
  for (int i = 0; i < 50000; ++i) {
    candidates.push_back(
        {static_cast<graph::NodeId>(i), rng.Next() % 100000});
  }
  for (auto _ : state) {
    auto copy = candidates;
    benchmark::DoNotOptimize(
        prefetch::TopMStore::Build(std::move(copy), 5000, 60000));
  }
  state.SetItemsProcessed(state.iterations() * candidates.size());
}
BENCHMARK(BM_TopMBuild);

void BM_TopMLookup(benchmark::State& state) {
  std::vector<prefetch::ScoredKey> candidates;
  for (int i = 0; i < 10000; ++i) {
    candidates.push_back({static_cast<graph::NodeId>(i * 3), uint64_t(i)});
  }
  const auto store = prefetch::TopMStore::Build(candidates, 4000, 40000);
  uint32_t key = 1;
  for (auto _ : state) {
    key = key * 1103515245 + 12345;
    benchmark::DoNotOptimize(store.Contains(key % 40000));
  }
}
BENCHMARK(BM_TopMLookup);

void BM_RmatGeneration(benchmark::State& state) {
  graph::RmatParams params;
  params.scale = 12;
  params.num_edges = 50000;
  for (auto _ : state) {
    params.seed++;
    benchmark::DoNotOptimize(graph::GenerateRmat(params));
  }
  state.SetItemsProcessed(state.iterations() * params.num_edges);
}
BENCHMARK(BM_RmatGeneration);

void BM_WofpBuild(benchmark::State& state) {
  const graph::CsdbMatrix& m = TestMatrix();
  auto ms = memsim::MemorySystem::CreateDefault();
  const auto in_degrees = prefetch::ComputeInDegrees(m);
  sched::Workload w;
  w.ranges.push_back(sched::RowRange{0, m.num_rows()});
  sched::RefreshCounts(m, &w);
  prefetch::WofpOptions opts;
  opts.charge_build = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        prefetch::WofpPrefetcher::Build(m, w, in_degrees, opts, ms.get(), nullptr));
  }
  state.SetItemsProcessed(state.iterations() * m.nnz());
}
BENCHMARK(BM_WofpBuild);

// ---------------------------------------------------------------------------
// Dense GEMM host kernels: the pre-blocking reference vs the register/cache-
// blocked kernel, serial and on an 8-worker pool.

ThreadPool& GemmPool() {
  static ThreadPool pool(8);
  return pool;
}

void BM_GemmNaive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const linalg::DenseMatrix a = linalg::GaussianMatrix(n, n, 1);
  const linalg::DenseMatrix b = linalg::GaussianMatrix(n, n, 2);
  linalg::DenseMatrix c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::GemmNaive(a, b, &c));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(256)->Arg(512);

void BM_GemmBlocked(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const linalg::DenseMatrix a = linalg::GaussianMatrix(n, n, 1);
  const linalg::DenseMatrix b = linalg::GaussianMatrix(n, n, 2);
  linalg::DenseMatrix c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::Gemm(a, b, &c));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlocked)->Arg(256)->Arg(512);

void BM_GemmBlockedPool8(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const linalg::DenseMatrix a = linalg::GaussianMatrix(n, n, 1);
  const linalg::DenseMatrix b = linalg::GaussianMatrix(n, n, 2);
  linalg::DenseMatrix c;
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::Gemm(a, b, &c, &GemmPool()));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlockedPool8)->Arg(256)->Arg(512);

// Timed GEMM section behind the custom main: GFLOP/s of the three variants
// at a few square sizes, printed as a table and (optionally) written to the
// --bench-json file for perf tracking.
template <typename Fn>
double BestSeconds(int reps, const Fn& fn) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    bench::WallTimer timer;
    fn();
    best = std::min(best, timer.Seconds());
  }
  return best;
}

void RunGemmReport(const std::string& json_path) {
  bench::BenchJson json;
  std::printf("\nGEMM host kernels (best of 3, wall clock):\n");
  std::printf("%8s %14s %14s %14s %10s %10s\n", "n", "naive GF/s",
              "blocked GF/s", "blocked8 GF/s", "blk/naive", "blk8/naive");
  // Sizes where the operands exceed L2: this is the regime the blocked
  // kernel exists for (and where ProNE/NetMF-scale dense stages live).
  for (const size_t n : {1024, 2048}) {
    const linalg::DenseMatrix a = linalg::GaussianMatrix(n, n, 1);
    const linalg::DenseMatrix b = linalg::GaussianMatrix(n, n, 2);
    linalg::DenseMatrix c;
    const double flops = 2.0 * static_cast<double>(n) * n * n;
    const double naive_s =
        BestSeconds(3, [&] { (void)linalg::GemmNaive(a, b, &c); });
    const double blocked_s =
        BestSeconds(3, [&] { (void)linalg::Gemm(a, b, &c); });
    const double pool_s =
        BestSeconds(3, [&] { (void)linalg::Gemm(a, b, &c, &GemmPool()); });
    const double naive_gf = flops / naive_s / 1e9;
    const double blocked_gf = flops / blocked_s / 1e9;
    const double pool_gf = flops / pool_s / 1e9;
    std::printf("%8zu %14.2f %14.2f %14.2f %9.2fx %9.2fx\n", n, naive_gf,
                blocked_gf, pool_gf, naive_s / blocked_s, naive_s / pool_s);
    const std::string entry = "gemm_" + std::to_string(n);
    json.Add(entry, "naive_gflops", naive_gf);
    json.Add(entry, "blocked_gflops", blocked_gf);
    json.Add(entry, "blocked_pool8_gflops", pool_gf);
    json.Add(entry, "speedup_blocked", naive_s / blocked_s);
    json.Add(entry, "speedup_blocked_pool8", naive_s / pool_s);
  }
  if (!json_path.empty() && json.WriteFile(json_path)) {
    std::printf("wrote %s\n", json_path.c_str());
  }
}

// Timed SpMM section: the per-column oracle vs the scalar-panel and best
// (possibly SIMD) column-panel kernels, for CSDB and CSR, on the bench R-MAT
// graph. GFLOP/s counts 2*nnz*d flops; effective GB/s charges the panel
// kernels' algorithmic traffic (one index+value load per nonzero, d dense
// reads per nonzero, d writes per row) to every variant so the column is
// comparable — the per-column loop actually re-reads the sparse side d times,
// which is exactly the host cost the panels remove.
void RunSpmmReport(const std::string& json_path, bool smoke) {
  const graph::CsdbMatrix& m = TestMatrix();
  const graph::CsrMatrix csr = sparse::ToCsr(m).value();
  sched::Workload w;
  w.ranges.push_back(sched::RowRange{0, m.num_rows()});
  const int reps = smoke ? 1 : 3;
  const std::vector<size_t> widths = smoke ? std::vector<size_t>{128}
                                           : std::vector<size_t>{8, 32, 128};

  bench::BenchJson json;
  std::printf("\nSpMM host kernels, serial (best of %d, wall clock; simd=%s):\n",
              reps, sparse::kernels::SpmmSimdEnabled() ? "on" : "off");
  std::printf("%14s %12s %12s %12s %10s %10s\n", "kernel", "percol GF/s",
              "scalar GF/s", "panel GF/s", "panel/pc", "eff GB/s");
  for (const size_t d : widths) {
    const linalg::DenseMatrix b = linalg::GaussianMatrix(m.num_cols(), d, 7);
    linalg::DenseMatrix c(m.num_rows(), d);
    const double flops = 2.0 * static_cast<double>(m.nnz()) * d;
    const double bytes = 8.0 * m.nnz() + 4.0 * d * m.nnz() + 4.0 * d * m.num_rows();

    const double csdb_percol_s = BestSeconds(
        reps, [&] { sparse::ComputeWorkloadCsdbPerColumn(m, b, &c, w); });
    const double csdb_scalar_s = BestSeconds(reps, [&] {
      sparse::kernels::CsdbPanelSpmmScalar(m, b, &c, 0, m.num_rows(), 0, d);
    });
    const double csdb_panel_s = BestSeconds(reps, [&] {
      sparse::kernels::CsdbPanelSpmm(m, b, &c, 0, m.num_rows(), 0, d);
    });
    const double csr_percol_s = BestSeconds(reps, [&] {
      sparse::ComputeWorkloadCsrPerColumn(csr, b, &c, 0, csr.num_rows());
    });
    const double csr_panel_s = BestSeconds(reps, [&] {
      sparse::kernels::CsrPanelSpmm(csr, b, &c, 0, csr.num_rows(), 0, d);
    });

    std::printf("%10s d=%-3zu %12.2f %12.2f %12.2f %9.2fx %10.1f\n", "csdb", d,
                flops / csdb_percol_s / 1e9, flops / csdb_scalar_s / 1e9,
                flops / csdb_panel_s / 1e9, csdb_percol_s / csdb_panel_s,
                bytes / csdb_panel_s / 1e9);
    std::printf("%10s d=%-3zu %12.2f %12s %12.2f %9.2fx %10.1f\n", "csr", d,
                flops / csr_percol_s / 1e9, "-", flops / csr_panel_s / 1e9,
                csr_percol_s / csr_panel_s, bytes / csr_panel_s / 1e9);

    const std::string entry = "spmm_csdb_" + std::to_string(d);
    json.Add(entry, "percol_gflops", flops / csdb_percol_s / 1e9);
    json.Add(entry, "panel_scalar_gflops", flops / csdb_scalar_s / 1e9);
    json.Add(entry, "panel_gflops", flops / csdb_panel_s / 1e9);
    json.Add(entry, "speedup_panel", csdb_percol_s / csdb_panel_s);
    json.Add(entry, "effective_gbs", bytes / csdb_panel_s / 1e9);
    const std::string csr_entry = "spmm_csr_" + std::to_string(d);
    json.Add(csr_entry, "percol_gflops", flops / csr_percol_s / 1e9);
    json.Add(csr_entry, "panel_gflops", flops / csr_panel_s / 1e9);
    json.Add(csr_entry, "speedup_panel", csr_percol_s / csr_panel_s);
    json.Add(csr_entry, "effective_gbs", bytes / csr_panel_s / 1e9);
  }
  json.Add("spmm_build", "simd_enabled",
           sparse::kernels::SpmmSimdEnabled() ? 1.0 : 0.0);
  if (!json_path.empty() && json.WriteFile(json_path)) {
    std::printf("wrote %s\n", json_path.c_str());
  }
}

// Extracts `--spmm-json=<path>` and `--smoke` from argv (compacting argv in
// place, mirroring BenchJsonPathFromArgs) before google-benchmark parses it.
std::string SpmmArgsFromArgv(int* argc, char** argv, bool* smoke) {
  std::string path;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--spmm-json=", 0) == 0) {
      path = arg.substr(std::string("--spmm-json=").size());
    } else if (arg == "--smoke") {
      *smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const std::string spmm_json = SpmmArgsFromArgv(&argc, argv, &smoke);
  const std::string json_path = omega::bench::BenchJsonPathFromArgs(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  RunGemmReport(json_path);
  RunSpmmReport(spmm_json, smoke);
  return 0;
}
