// Table I reproduction: dataset statistics.
//
// Prints the paper's reported statistics for each real-world graph alongside
// the generated ~1/1000-scale R-MAT analogue actually used by the harnesses.

#include "bench_util.h"
#include "common/string_util.h"
#include "graph/stats.h"

int main() {
  using namespace omega;
  engine::PrintExperimentHeader("Table I", "dataset statistics");

  engine::TablePrinter table({"Graph", "paper #nodes", "paper #edges",
                              "paper #degrees", "analogue #nodes",
                              "analogue #arcs", "analogue #degrees",
                              "max degree", "norm. entropy"});
  for (const auto& spec : graph::AllDatasets()) {
    const graph::Graph g = graph::LoadDataset(spec).value();
    const graph::DegreeStats stats = graph::ComputeDegreeStats(g);
    table.AddRow({spec.name, HumanCount(spec.paper_nodes),
                  HumanCount(spec.paper_edges), std::to_string(spec.paper_degrees),
                  HumanCount(stats.num_nodes), HumanCount(stats.num_arcs),
                  std::to_string(stats.distinct_degrees),
                  std::to_string(stats.max_degree),
                  FormatDouble(stats.normalized_entropy, 3)});
  }
  table.Print();
  std::printf(
      "\n'#degrees' is the number of distinct degree values (the CSDB index\n"
      "size, O(|Degree|) vs CSR's O(|V|)). The analogues keep each graph's\n"
      "node:edge ratio and skew at ~1/1000 of the paper's scale.\n");
  return 0;
}
