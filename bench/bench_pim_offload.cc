// PIM offload: host-only vs all-PIM vs entropy-aware auto placement.
//
// For every Table I dataset the harness runs the full OMeGa configuration
// under the three --pim-placement policies (64 simulated banks) and compares
// the simulated SpMM time — the sum of the non-aux *.spmm.* phases, which is
// exactly the portion the heterogeneous scheduler can move. The two-clock
// contract demands bit-identical embeddings across all three policies (and
// against a PIM-less run): placement changes charges, never bytes; the
// harness aborts on a fingerprint mismatch.
//
// Shape to check: auto is never slower than the better fixed policy on any
// graph, and clearly ahead of host-only wherever the degree blocks fit MRAM
// (the acceptance bar is >= 1.3x on PK and LJ).
//
// Flags:
//   --smoke                  PK only (the CI Release job's quick pass)
//   --bench-json=<path>      machine-readable results (BENCH_pim_offload.json)
//   --placement-json=<path>  the auto policy's per-degree-block split

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/md5.h"
#include "common/string_util.h"
#include "graph/csdb.h"
#include "sched/hetero_placement.h"

namespace {

using namespace omega;

constexpr int kBanks = 64;

/// Simulated seconds of the non-aux SpMM phases (factorize.spmm.* and
/// propagate.spmm.*). Aux records (pim.*, plan.*, *.dense) are attribution
/// overlays of the same time, so summing them too would double-count.
double SpmmSeconds(const engine::RunReport& report) {
  double seconds = 0.0;
  for (const exec::PhaseRecord& p : report.phases) {
    if (!p.aux && p.name.find(".spmm.") != std::string::npos) {
      seconds += p.sim_seconds;
    }
  }
  return seconds;
}

std::string EmbeddingFingerprint(const engine::RunReport& report) {
  const linalg::DenseMatrix& e = report.embedding;
  return Md5Hex(e.data(), e.rows() * e.cols() * sizeof(float));
}

/// Dumps the auto policy's per-degree-block placement decisions for one
/// matrix, as one JSON entry. Uses the propagate-stage operand width (the
/// embedding dimension): the ship cost is width-invariant while everything
/// else scales with it, so this is the width where offload is hardest to
/// justify and the most interesting split to inspect.
void AppendPlacementJson(std::ofstream& out, const std::string& name,
                         const graph::Graph& g, const bench::Env& env,
                         size_t dense_cols, bool first) {
  const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(g);
  sched::PimConfig cfg;
  cfg.banks = kBanks;
  cfg.mram_bytes_per_bank = env.ms->topology().config().pim_mram_bytes_per_bank;
  cfg.bank_ops_per_second = env.ms->cost_model().profiles().pim_bank_ops_per_second;
  cfg.policy = sched::PimPolicy::kAuto;
  cfg.dense_cols = dense_cols;
  const sched::HeteroPlacement placement = sched::PlaceDegreeBlocks(
      a, cfg, *env.ms, env.threads, memsim::Tier::kPm, memsim::Tier::kPm,
      memsim::Tier::kDram);

  if (!first) out << ",\n";
  out << "  " << JsonQuoted(name) << ": {\n"
      << "    \"dense_cols\": " << dense_cols << ",\n"
      << "    \"pim_nnz\": " << placement.pim_nnz << ",\n"
      << "    \"host_nnz\": " << placement.host_nnz << ",\n"
      << "    \"pim_rows\": " << placement.pim_rows << ",\n"
      << "    \"blocks\": [\n";
  for (size_t i = 0; i < placement.blocks.size(); ++i) {
    const sched::HeteroBlock& b = placement.blocks[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "      {\"rows\": [%llu, %llu], \"degree\": %llu, "
                  "\"nnz\": %llu, \"entropy_z\": %.4f, \"fits_mram\": %s, "
                  "\"host_seconds\": %.3e, \"pim_seconds\": %.3e, "
                  "\"on\": \"%s\"}%s\n",
                  static_cast<unsigned long long>(b.row_begin),
                  static_cast<unsigned long long>(b.row_end),
                  static_cast<unsigned long long>(b.degree),
                  static_cast<unsigned long long>(b.nnz), b.entropy_z,
                  b.fits_mram ? "true" : "false", b.host_seconds,
                  b.pim_seconds, b.on_pim ? "pim" : "host",
                  i + 1 < placement.blocks.size() ? "," : "");
    out << line;
  }
  out << "    ]\n  }";
}

}  // namespace

int main(int argc, char** argv) {
  using bench::Ratio;
  bench::BenchJson json;
  const std::string json_path = bench::BenchJsonPathFromArgs(&argc, argv);

  bool smoke = false;
  std::string placement_path;
  constexpr const char* kPlacementPrefix = "--placement-json=";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], kPlacementPrefix,
                            std::strlen(kPlacementPrefix)) == 0) {
      placement_path = argv[i] + std::strlen(kPlacementPrefix);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--bench-json=path] "
                   "[--placement-json=path]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::Env env = bench::MakeEnv(36);
  const std::vector<std::string> graphs =
      smoke ? std::vector<std::string>{"PK"} : bench::AllGraphNames();

  engine::PrintExperimentHeader(
      "PIM offload", "SpMM placement: host-only vs all-PIM vs auto");
  engine::TablePrinter table({"Graph", "host-only", "all-PIM", "auto",
                              "auto/host", "auto/best-fixed", "identical"});

  std::ofstream placement_out;
  if (!placement_path.empty()) {
    placement_out.open(placement_path);
    if (!placement_out) {
      std::fprintf(stderr, "cannot write placement json to %s\n",
                   placement_path.c_str());
      return 1;
    }
    placement_out << "{\n";
  }

  bool all_identical = true;
  bool first_placement = true;
  for (const std::string& name : graphs) {
    const graph::Graph g = bench::LoadGraphOrDie(name);

    const sched::PimPolicy policies[] = {sched::PimPolicy::kHostOnly,
                                         sched::PimPolicy::kAllPim,
                                         sched::PimPolicy::kAuto};
    double spmm[3] = {0.0, 0.0, 0.0};
    double total[3] = {0.0, 0.0, 0.0};
    std::string fingerprint[3];
    for (int i = 0; i < 3; ++i) {
      auto options =
          bench::DefaultOptions(engine::SystemKind::kOmega, env.threads);
      options.features.pim_banks = kBanks;
      options.features.pim_placement = policies[i];
      auto report = engine::RunEmbedding(g, name, options, env.Context());
      if (!report.ok()) {
        std::fprintf(stderr, "%s with %s failed: %s\n", name.c_str(),
                     sched::PimPolicyName(policies[i]),
                     report.status().ToString().c_str());
        return 1;
      }
      spmm[i] = SpmmSeconds(report.value());
      total[i] = report.value().total_seconds;
      fingerprint[i] = EmbeddingFingerprint(report.value());
      if (bench::PhaseTraceEnabled()) bench::PrintPhaseTable(report.value());
    }

    const bool identical =
        fingerprint[0] == fingerprint[1] && fingerprint[0] == fingerprint[2];
    all_identical = all_identical && identical;
    const double best_fixed = std::min(spmm[0], spmm[1]);
    table.AddRow({name, HumanSeconds(spmm[0]), HumanSeconds(spmm[1]),
                  HumanSeconds(spmm[2]), Ratio(spmm[0], spmm[2]),
                  Ratio(best_fixed, spmm[2]), identical ? "yes" : "NO"});

    json.Add(name, "spmm_host_only_seconds", spmm[0]);
    json.Add(name, "spmm_all_pim_seconds", spmm[1]);
    json.Add(name, "spmm_auto_seconds", spmm[2]);
    json.Add(name, "total_auto_seconds", total[2]);
    json.Add(name, "auto_speedup_vs_host_only", spmm[0] / spmm[2]);
    json.Add(name, "auto_speedup_vs_best_fixed", best_fixed / spmm[2]);
    json.Add(name, "bit_identical", identical ? 1.0 : 0.0);

    if (placement_out.is_open()) {
      AppendPlacementJson(placement_out, name, g, env, /*dense_cols=*/32,
                          first_placement);
      first_placement = false;
    }
  }
  table.Print();
  std::printf(
      "simulated SpMM seconds per policy; auto must never trail the better "
      "fixed policy.\n");

  if (placement_out.is_open()) {
    placement_out << "\n}\n";
    std::printf("auto placement split written to %s\n", placement_path.c_str());
  }
  if (!json_path.empty() && !json.WriteFile(json_path)) return 1;
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: embeddings differ across placement policies\n");
    return 1;
  }
  return 0;
}
