// Fig. 16 reproduction: SpMM throughput (million nnz fetched per second).
//   (a) per graph at 30 threads, OMeGa vs OMeGa-w/o-NaDP;
//   (b) vs thread count on soc-LiveJournal.
//
// Shapes to check: NaDP lifts throughput on every graph, and throughput grows
// with threads for both configurations (paper Fig. 16a/b).

#include "bench_util.h"
#include "common/string_util.h"
#include "linalg/random_matrix.h"
#include "numa/nadp.h"

namespace {

double ThroughputMnnz(const omega::graph::CsdbMatrix& a,
                      const omega::linalg::DenseMatrix& b, bool nadp, int threads,
                      omega::bench::Env* env) {
  omega::linalg::DenseMatrix c(a.num_rows(), b.cols());
  omega::numa::NadpOptions opts;
  opts.num_threads = threads;
  opts.enabled = nadp;
  const auto result =
      omega::numa::NadpSpmm(a, b, &c, opts, env->Context());
  return result.ThroughputNnzPerSec() / 1e6;
}

}  // namespace

int main() {
  using namespace omega;
  bench::Env env = bench::MakeEnv(36);

  engine::PrintExperimentHeader(
      "Fig. 16a", "SpMM throughput (Mnnz/s) per graph, 30 threads");
  engine::TablePrinter per_graph({"Graph", "OMeGa-w/o-NaDP", "OMeGa", "gain"});
  const std::vector<std::string> graphs = {"PK", "LJ", "OR", "TW", "TW-2010"};
  for (const std::string& name : graphs) {
    const graph::Graph g = bench::LoadGraphOrDie(name);
    const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(g);
    const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 32, 31);
    const double without = ThroughputMnnz(a, b, false, 30, &env);
    const double with = ThroughputMnnz(a, b, true, 30, &env);
    per_graph.AddRow({name, FormatDouble(without, 2), FormatDouble(with, 2),
                      bench::Ratio(with, without)});
  }
  per_graph.Print();

  engine::PrintExperimentHeader("Fig. 16b",
                                "SpMM throughput (Mnnz/s) vs threads on LJ");
  const graph::Graph g = bench::LoadGraphOrDie("LJ");
  const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(g);
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 32, 37);
  engine::TablePrinter by_threads({"threads", "OMeGa-w/o-NaDP", "OMeGa"});
  for (int threads : {6, 12, 18, 24, 30, 36}) {
    by_threads.AddRow({std::to_string(threads),
                       FormatDouble(ThroughputMnnz(a, b, false, threads, &env), 2),
                       FormatDouble(ThroughputMnnz(a, b, true, threads, &env), 2)});
  }
  by_threads.Print();
  std::printf("(paper: NaDP better utilizes parallel resources at every point)\n");
  return 0;
}
