// Fig. 13 reproduction: distribution of per-thread running times for one
// SpMM on soc-LiveJournal under WaTA vs EaTA.
//
// Shapes to check against the paper: EaTA's distribution is tighter —
// smaller standard deviation (paper: 0.78 vs 1.52 in their units) and
// reduced P95/P99 tail latency (paper: -24% / -31%).

#include "bench_util.h"
#include "common/string_util.h"
#include "common/topk.h"
#include "linalg/random_matrix.h"
#include "sched/allocators.h"
#include "sparse/spmm.h"

int main() {
  using namespace omega;
  bench::Env env = bench::MakeEnv(36);
  engine::PrintExperimentHeader(
      "Fig. 13", "thread running-time distribution, WaTA vs EaTA (LJ)");

  const graph::Graph g = bench::LoadGraphOrDie("LJ");
  const graph::CsdbMatrix a = graph::CsdbMatrix::FromGraph(g);
  const linalg::DenseMatrix b = linalg::GaussianMatrix(a.num_cols(), 32, 17);
  linalg::DenseMatrix c(a.num_rows(), 32);

  std::vector<double> times[2];
  const sched::AllocatorKind kinds[2] = {sched::AllocatorKind::kWorkloadBalanced,
                                         sched::AllocatorKind::kEntropyAware};
  for (int k = 0; k < 2; ++k) {
    sched::AllocatorOptions opts;
    opts.num_threads = env.threads;
    const auto workloads = sched::Allocate(a, kinds[k], opts);
    times[k] = sparse::ParallelSpmm(a, b, &c, workloads, sparse::SpmmPlacements{},
                                    env.Context())
                   .thread_seconds;
  }

  // Histogram over shared bins.
  double max_time = 0.0;
  for (int k = 0; k < 2; ++k) {
    for (double t : times[k]) max_time = std::max(max_time, t);
  }
  const int kBins = 10;
  engine::TablePrinter hist({"time bin", "WaTA threads", "EaTA threads"});
  for (int bin = 0; bin < kBins; ++bin) {
    const double lo = max_time * bin / kBins;
    const double hi = max_time * (bin + 1) / kBins;
    int counts[2] = {0, 0};
    for (int k = 0; k < 2; ++k) {
      for (double t : times[k]) {
        if (t >= lo && (t < hi || bin == kBins - 1)) counts[k]++;
      }
    }
    hist.AddRow({HumanSeconds(lo) + " - " + HumanSeconds(hi),
                 std::string(counts[0], '#') + " " + std::to_string(counts[0]),
                 std::string(counts[1], '#') + " " + std::to_string(counts[1])});
  }
  hist.Print();

  engine::TablePrinter stats({"metric", "WaTA", "EaTA", "reduction"});
  auto add_metric = [&](const char* metric, double w, double e) {
    stats.AddRow({metric, HumanSeconds(w), HumanSeconds(e),
                  FormatDouble(100.0 * (1.0 - e / w), 1) + "%"});
  };
  add_metric("mean", Percentile(times[0], 50), Percentile(times[1], 50));
  stats.AddRow({"stddev", HumanSeconds(StdDev(times[0])),
                HumanSeconds(StdDev(times[1])),
                FormatDouble(100.0 * (1.0 - StdDev(times[1]) /
                                                StdDev(times[0])),
                             1) +
                    "%"});
  add_metric("P95", Percentile(times[0], 95), Percentile(times[1], 95));
  add_metric("P99", Percentile(times[0], 99), Percentile(times[1], 99));
  stats.Print();

  // The straggler set itself: the three slowest threads under each allocator.
  for (int k = 0; k < 2; ++k) {
    TopK slowest(3);
    for (size_t t = 0; t < times[k].size(); ++t) {
      slowest.Offer(static_cast<uint32_t>(t),
                    static_cast<float>(times[k][t]));
    }
    std::printf("slowest %s threads:", k == 0 ? "WaTA" : "EaTA");
    for (const ScoredId& s : slowest.Take()) {
      std::printf(" #%u %s", s.id, HumanSeconds(s.score).c_str());
    }
    std::printf("\n");
  }
  std::printf("(paper: stddev 1.52 -> 0.78, P95 -24%%, P99 -31%%)\n");
  return 0;
}
