file(REMOVE_RECURSE
  "libomega_prefetch.a"
)
