file(REMOVE_RECURSE
  "CMakeFiles/omega_prefetch.dir/prefetch/topm_store.cc.o"
  "CMakeFiles/omega_prefetch.dir/prefetch/topm_store.cc.o.d"
  "CMakeFiles/omega_prefetch.dir/prefetch/wofp.cc.o"
  "CMakeFiles/omega_prefetch.dir/prefetch/wofp.cc.o.d"
  "libomega_prefetch.a"
  "libomega_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
