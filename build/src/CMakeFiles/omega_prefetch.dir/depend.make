# Empty dependencies file for omega_prefetch.
# This may be replaced when dependencies are built.
