file(REMOVE_RECURSE
  "CMakeFiles/omega_sched.dir/sched/allocators.cc.o"
  "CMakeFiles/omega_sched.dir/sched/allocators.cc.o.d"
  "CMakeFiles/omega_sched.dir/sched/entropy.cc.o"
  "CMakeFiles/omega_sched.dir/sched/entropy.cc.o.d"
  "CMakeFiles/omega_sched.dir/sched/workload.cc.o"
  "CMakeFiles/omega_sched.dir/sched/workload.cc.o.d"
  "libomega_sched.a"
  "libomega_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
