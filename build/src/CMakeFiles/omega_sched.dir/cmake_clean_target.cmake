file(REMOVE_RECURSE
  "libomega_sched.a"
)
