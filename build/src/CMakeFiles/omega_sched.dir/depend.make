# Empty dependencies file for omega_sched.
# This may be replaced when dependencies are built.
