file(REMOVE_RECURSE
  "CMakeFiles/omega_memsim.dir/memsim/bandwidth_probe.cc.o"
  "CMakeFiles/omega_memsim.dir/memsim/bandwidth_probe.cc.o.d"
  "CMakeFiles/omega_memsim.dir/memsim/cost_model.cc.o"
  "CMakeFiles/omega_memsim.dir/memsim/cost_model.cc.o.d"
  "CMakeFiles/omega_memsim.dir/memsim/device_profile.cc.o"
  "CMakeFiles/omega_memsim.dir/memsim/device_profile.cc.o.d"
  "CMakeFiles/omega_memsim.dir/memsim/memory_system.cc.o"
  "CMakeFiles/omega_memsim.dir/memsim/memory_system.cc.o.d"
  "CMakeFiles/omega_memsim.dir/memsim/topology.cc.o"
  "CMakeFiles/omega_memsim.dir/memsim/topology.cc.o.d"
  "libomega_memsim.a"
  "libomega_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
