# Empty dependencies file for omega_memsim.
# This may be replaced when dependencies are built.
