
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/bandwidth_probe.cc" "src/CMakeFiles/omega_memsim.dir/memsim/bandwidth_probe.cc.o" "gcc" "src/CMakeFiles/omega_memsim.dir/memsim/bandwidth_probe.cc.o.d"
  "/root/repo/src/memsim/cost_model.cc" "src/CMakeFiles/omega_memsim.dir/memsim/cost_model.cc.o" "gcc" "src/CMakeFiles/omega_memsim.dir/memsim/cost_model.cc.o.d"
  "/root/repo/src/memsim/device_profile.cc" "src/CMakeFiles/omega_memsim.dir/memsim/device_profile.cc.o" "gcc" "src/CMakeFiles/omega_memsim.dir/memsim/device_profile.cc.o.d"
  "/root/repo/src/memsim/memory_system.cc" "src/CMakeFiles/omega_memsim.dir/memsim/memory_system.cc.o" "gcc" "src/CMakeFiles/omega_memsim.dir/memsim/memory_system.cc.o.d"
  "/root/repo/src/memsim/topology.cc" "src/CMakeFiles/omega_memsim.dir/memsim/topology.cc.o" "gcc" "src/CMakeFiles/omega_memsim.dir/memsim/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omega_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
