file(REMOVE_RECURSE
  "libomega_memsim.a"
)
