# Empty compiler generated dependencies file for omega_sparse.
# This may be replaced when dependencies are built.
