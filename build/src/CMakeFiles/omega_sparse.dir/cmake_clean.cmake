file(REMOVE_RECURSE
  "CMakeFiles/omega_sparse.dir/sparse/csdb_ops.cc.o"
  "CMakeFiles/omega_sparse.dir/sparse/csdb_ops.cc.o.d"
  "CMakeFiles/omega_sparse.dir/sparse/fused.cc.o"
  "CMakeFiles/omega_sparse.dir/sparse/fused.cc.o.d"
  "CMakeFiles/omega_sparse.dir/sparse/semi_external.cc.o"
  "CMakeFiles/omega_sparse.dir/sparse/semi_external.cc.o.d"
  "CMakeFiles/omega_sparse.dir/sparse/spmm.cc.o"
  "CMakeFiles/omega_sparse.dir/sparse/spmm.cc.o.d"
  "libomega_sparse.a"
  "libomega_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
