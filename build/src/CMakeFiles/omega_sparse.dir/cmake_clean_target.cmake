file(REMOVE_RECURSE
  "libomega_sparse.a"
)
