
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/csdb_ops.cc" "src/CMakeFiles/omega_sparse.dir/sparse/csdb_ops.cc.o" "gcc" "src/CMakeFiles/omega_sparse.dir/sparse/csdb_ops.cc.o.d"
  "/root/repo/src/sparse/fused.cc" "src/CMakeFiles/omega_sparse.dir/sparse/fused.cc.o" "gcc" "src/CMakeFiles/omega_sparse.dir/sparse/fused.cc.o.d"
  "/root/repo/src/sparse/semi_external.cc" "src/CMakeFiles/omega_sparse.dir/sparse/semi_external.cc.o" "gcc" "src/CMakeFiles/omega_sparse.dir/sparse/semi_external.cc.o.d"
  "/root/repo/src/sparse/spmm.cc" "src/CMakeFiles/omega_sparse.dir/sparse/spmm.cc.o" "gcc" "src/CMakeFiles/omega_sparse.dir/sparse/spmm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omega_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
