file(REMOVE_RECURSE
  "CMakeFiles/omega_graph.dir/graph/community.cc.o"
  "CMakeFiles/omega_graph.dir/graph/community.cc.o.d"
  "CMakeFiles/omega_graph.dir/graph/csdb.cc.o"
  "CMakeFiles/omega_graph.dir/graph/csdb.cc.o.d"
  "CMakeFiles/omega_graph.dir/graph/csr.cc.o"
  "CMakeFiles/omega_graph.dir/graph/csr.cc.o.d"
  "CMakeFiles/omega_graph.dir/graph/datasets.cc.o"
  "CMakeFiles/omega_graph.dir/graph/datasets.cc.o.d"
  "CMakeFiles/omega_graph.dir/graph/graph.cc.o"
  "CMakeFiles/omega_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/omega_graph.dir/graph/graph_io.cc.o"
  "CMakeFiles/omega_graph.dir/graph/graph_io.cc.o.d"
  "CMakeFiles/omega_graph.dir/graph/rmat.cc.o"
  "CMakeFiles/omega_graph.dir/graph/rmat.cc.o.d"
  "CMakeFiles/omega_graph.dir/graph/stats.cc.o"
  "CMakeFiles/omega_graph.dir/graph/stats.cc.o.d"
  "CMakeFiles/omega_graph.dir/graph/traversal.cc.o"
  "CMakeFiles/omega_graph.dir/graph/traversal.cc.o.d"
  "libomega_graph.a"
  "libomega_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
