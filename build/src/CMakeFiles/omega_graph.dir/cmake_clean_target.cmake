file(REMOVE_RECURSE
  "libomega_graph.a"
)
