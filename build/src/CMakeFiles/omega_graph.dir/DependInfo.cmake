
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/community.cc" "src/CMakeFiles/omega_graph.dir/graph/community.cc.o" "gcc" "src/CMakeFiles/omega_graph.dir/graph/community.cc.o.d"
  "/root/repo/src/graph/csdb.cc" "src/CMakeFiles/omega_graph.dir/graph/csdb.cc.o" "gcc" "src/CMakeFiles/omega_graph.dir/graph/csdb.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/CMakeFiles/omega_graph.dir/graph/csr.cc.o" "gcc" "src/CMakeFiles/omega_graph.dir/graph/csr.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "src/CMakeFiles/omega_graph.dir/graph/datasets.cc.o" "gcc" "src/CMakeFiles/omega_graph.dir/graph/datasets.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/omega_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/omega_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/omega_graph.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/omega_graph.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/rmat.cc" "src/CMakeFiles/omega_graph.dir/graph/rmat.cc.o" "gcc" "src/CMakeFiles/omega_graph.dir/graph/rmat.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/CMakeFiles/omega_graph.dir/graph/stats.cc.o" "gcc" "src/CMakeFiles/omega_graph.dir/graph/stats.cc.o.d"
  "/root/repo/src/graph/traversal.cc" "src/CMakeFiles/omega_graph.dir/graph/traversal.cc.o" "gcc" "src/CMakeFiles/omega_graph.dir/graph/traversal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omega_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
