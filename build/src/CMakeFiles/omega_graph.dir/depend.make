# Empty dependencies file for omega_graph.
# This may be replaced when dependencies are built.
