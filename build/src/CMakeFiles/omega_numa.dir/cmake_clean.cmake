file(REMOVE_RECURSE
  "CMakeFiles/omega_numa.dir/numa/nadp.cc.o"
  "CMakeFiles/omega_numa.dir/numa/nadp.cc.o.d"
  "CMakeFiles/omega_numa.dir/numa/partition.cc.o"
  "CMakeFiles/omega_numa.dir/numa/partition.cc.o.d"
  "libomega_numa.a"
  "libomega_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
