# Empty compiler generated dependencies file for omega_numa.
# This may be replaced when dependencies are built.
