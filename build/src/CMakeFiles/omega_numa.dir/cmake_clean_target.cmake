file(REMOVE_RECURSE
  "libomega_numa.a"
)
