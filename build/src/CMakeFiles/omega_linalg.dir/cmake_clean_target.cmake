file(REMOVE_RECURSE
  "libomega_linalg.a"
)
