# Empty compiler generated dependencies file for omega_linalg.
# This may be replaced when dependencies are built.
