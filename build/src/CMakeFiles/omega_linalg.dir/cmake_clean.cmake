file(REMOVE_RECURSE
  "CMakeFiles/omega_linalg.dir/linalg/dense_matrix.cc.o"
  "CMakeFiles/omega_linalg.dir/linalg/dense_matrix.cc.o.d"
  "CMakeFiles/omega_linalg.dir/linalg/eigen.cc.o"
  "CMakeFiles/omega_linalg.dir/linalg/eigen.cc.o.d"
  "CMakeFiles/omega_linalg.dir/linalg/gemm.cc.o"
  "CMakeFiles/omega_linalg.dir/linalg/gemm.cc.o.d"
  "CMakeFiles/omega_linalg.dir/linalg/qr.cc.o"
  "CMakeFiles/omega_linalg.dir/linalg/qr.cc.o.d"
  "CMakeFiles/omega_linalg.dir/linalg/random_matrix.cc.o"
  "CMakeFiles/omega_linalg.dir/linalg/random_matrix.cc.o.d"
  "CMakeFiles/omega_linalg.dir/linalg/randomized_svd.cc.o"
  "CMakeFiles/omega_linalg.dir/linalg/randomized_svd.cc.o.d"
  "libomega_linalg.a"
  "libomega_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
