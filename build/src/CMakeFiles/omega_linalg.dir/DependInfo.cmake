
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/dense_matrix.cc" "src/CMakeFiles/omega_linalg.dir/linalg/dense_matrix.cc.o" "gcc" "src/CMakeFiles/omega_linalg.dir/linalg/dense_matrix.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "src/CMakeFiles/omega_linalg.dir/linalg/eigen.cc.o" "gcc" "src/CMakeFiles/omega_linalg.dir/linalg/eigen.cc.o.d"
  "/root/repo/src/linalg/gemm.cc" "src/CMakeFiles/omega_linalg.dir/linalg/gemm.cc.o" "gcc" "src/CMakeFiles/omega_linalg.dir/linalg/gemm.cc.o.d"
  "/root/repo/src/linalg/qr.cc" "src/CMakeFiles/omega_linalg.dir/linalg/qr.cc.o" "gcc" "src/CMakeFiles/omega_linalg.dir/linalg/qr.cc.o.d"
  "/root/repo/src/linalg/random_matrix.cc" "src/CMakeFiles/omega_linalg.dir/linalg/random_matrix.cc.o" "gcc" "src/CMakeFiles/omega_linalg.dir/linalg/random_matrix.cc.o.d"
  "/root/repo/src/linalg/randomized_svd.cc" "src/CMakeFiles/omega_linalg.dir/linalg/randomized_svd.cc.o" "gcc" "src/CMakeFiles/omega_linalg.dir/linalg/randomized_svd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omega_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
