
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/chebyshev.cc" "src/CMakeFiles/omega_embed.dir/embed/chebyshev.cc.o" "gcc" "src/CMakeFiles/omega_embed.dir/embed/chebyshev.cc.o.d"
  "/root/repo/src/embed/classification.cc" "src/CMakeFiles/omega_embed.dir/embed/classification.cc.o" "gcc" "src/CMakeFiles/omega_embed.dir/embed/classification.cc.o.d"
  "/root/repo/src/embed/embedding_io.cc" "src/CMakeFiles/omega_embed.dir/embed/embedding_io.cc.o" "gcc" "src/CMakeFiles/omega_embed.dir/embed/embedding_io.cc.o.d"
  "/root/repo/src/embed/gnn.cc" "src/CMakeFiles/omega_embed.dir/embed/gnn.cc.o" "gcc" "src/CMakeFiles/omega_embed.dir/embed/gnn.cc.o.d"
  "/root/repo/src/embed/prone.cc" "src/CMakeFiles/omega_embed.dir/embed/prone.cc.o" "gcc" "src/CMakeFiles/omega_embed.dir/embed/prone.cc.o.d"
  "/root/repo/src/embed/quality.cc" "src/CMakeFiles/omega_embed.dir/embed/quality.cc.o" "gcc" "src/CMakeFiles/omega_embed.dir/embed/quality.cc.o.d"
  "/root/repo/src/embed/random_walk.cc" "src/CMakeFiles/omega_embed.dir/embed/random_walk.cc.o" "gcc" "src/CMakeFiles/omega_embed.dir/embed/random_walk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omega_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_numa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
