file(REMOVE_RECURSE
  "CMakeFiles/omega_embed.dir/embed/chebyshev.cc.o"
  "CMakeFiles/omega_embed.dir/embed/chebyshev.cc.o.d"
  "CMakeFiles/omega_embed.dir/embed/classification.cc.o"
  "CMakeFiles/omega_embed.dir/embed/classification.cc.o.d"
  "CMakeFiles/omega_embed.dir/embed/embedding_io.cc.o"
  "CMakeFiles/omega_embed.dir/embed/embedding_io.cc.o.d"
  "CMakeFiles/omega_embed.dir/embed/gnn.cc.o"
  "CMakeFiles/omega_embed.dir/embed/gnn.cc.o.d"
  "CMakeFiles/omega_embed.dir/embed/prone.cc.o"
  "CMakeFiles/omega_embed.dir/embed/prone.cc.o.d"
  "CMakeFiles/omega_embed.dir/embed/quality.cc.o"
  "CMakeFiles/omega_embed.dir/embed/quality.cc.o.d"
  "CMakeFiles/omega_embed.dir/embed/random_walk.cc.o"
  "CMakeFiles/omega_embed.dir/embed/random_walk.cc.o.d"
  "libomega_embed.a"
  "libomega_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
