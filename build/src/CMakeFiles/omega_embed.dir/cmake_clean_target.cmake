file(REMOVE_RECURSE
  "libomega_embed.a"
)
