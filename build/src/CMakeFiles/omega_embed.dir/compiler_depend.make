# Empty compiler generated dependencies file for omega_embed.
# This may be replaced when dependencies are built.
