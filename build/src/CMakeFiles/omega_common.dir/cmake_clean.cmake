file(REMOVE_RECURSE
  "CMakeFiles/omega_common.dir/common/alias_sampler.cc.o"
  "CMakeFiles/omega_common.dir/common/alias_sampler.cc.o.d"
  "CMakeFiles/omega_common.dir/common/logging.cc.o"
  "CMakeFiles/omega_common.dir/common/logging.cc.o.d"
  "CMakeFiles/omega_common.dir/common/status.cc.o"
  "CMakeFiles/omega_common.dir/common/status.cc.o.d"
  "CMakeFiles/omega_common.dir/common/string_util.cc.o"
  "CMakeFiles/omega_common.dir/common/string_util.cc.o.d"
  "CMakeFiles/omega_common.dir/common/thread_pool.cc.o"
  "CMakeFiles/omega_common.dir/common/thread_pool.cc.o.d"
  "libomega_common.a"
  "libomega_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
