# Empty dependencies file for omega_engine.
# This may be replaced when dependencies are built.
