file(REMOVE_RECURSE
  "libomega_engine.a"
)
