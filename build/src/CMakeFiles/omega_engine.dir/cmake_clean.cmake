file(REMOVE_RECURSE
  "CMakeFiles/omega_engine.dir/omega/baselines.cc.o"
  "CMakeFiles/omega_engine.dir/omega/baselines.cc.o.d"
  "CMakeFiles/omega_engine.dir/omega/distributed_sim.cc.o"
  "CMakeFiles/omega_engine.dir/omega/distributed_sim.cc.o.d"
  "CMakeFiles/omega_engine.dir/omega/engine.cc.o"
  "CMakeFiles/omega_engine.dir/omega/engine.cc.o.d"
  "CMakeFiles/omega_engine.dir/omega/options.cc.o"
  "CMakeFiles/omega_engine.dir/omega/options.cc.o.d"
  "CMakeFiles/omega_engine.dir/omega/report.cc.o"
  "CMakeFiles/omega_engine.dir/omega/report.cc.o.d"
  "libomega_engine.a"
  "libomega_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
