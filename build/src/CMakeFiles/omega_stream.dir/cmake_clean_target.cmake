file(REMOVE_RECURSE
  "libomega_stream.a"
)
