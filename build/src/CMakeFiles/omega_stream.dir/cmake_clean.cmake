file(REMOVE_RECURSE
  "CMakeFiles/omega_stream.dir/stream/asl.cc.o"
  "CMakeFiles/omega_stream.dir/stream/asl.cc.o.d"
  "libomega_stream.a"
  "libomega_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
