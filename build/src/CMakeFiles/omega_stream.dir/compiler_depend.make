# Empty compiler generated dependencies file for omega_stream.
# This may be replaced when dependencies are built.
