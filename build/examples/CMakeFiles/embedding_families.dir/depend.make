# Empty dependencies file for embedding_families.
# This may be replaced when dependencies are built.
