file(REMOVE_RECURSE
  "CMakeFiles/embedding_families.dir/embedding_families.cpp.o"
  "CMakeFiles/embedding_families.dir/embedding_families.cpp.o.d"
  "embedding_families"
  "embedding_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
