file(REMOVE_RECURSE
  "CMakeFiles/gnn_inference.dir/gnn_inference.cpp.o"
  "CMakeFiles/gnn_inference.dir/gnn_inference.cpp.o.d"
  "gnn_inference"
  "gnn_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnn_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
