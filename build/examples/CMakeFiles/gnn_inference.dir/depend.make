# Empty dependencies file for gnn_inference.
# This may be replaced when dependencies are built.
