# Empty dependencies file for memory_tiers.
# This may be replaced when dependencies are built.
