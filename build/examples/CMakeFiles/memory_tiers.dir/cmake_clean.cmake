file(REMOVE_RECURSE
  "CMakeFiles/memory_tiers.dir/memory_tiers.cpp.o"
  "CMakeFiles/memory_tiers.dir/memory_tiers.cpp.o.d"
  "memory_tiers"
  "memory_tiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_tiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
