# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_link_prediction "/root/repo/build/examples/link_prediction" "PK")
set_tests_properties(example_link_prediction PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_recommendation "/root/repo/build/examples/recommendation")
set_tests_properties(example_recommendation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_memory_tiers "/root/repo/build/examples/memory_tiers")
set_tests_properties(example_memory_tiers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gnn_inference "/root/repo/build/examples/gnn_inference" "PK")
set_tests_properties(example_gnn_inference PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_embedding_families "/root/repo/build/examples/embedding_families" "PK")
set_tests_properties(example_embedding_families PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
