# Empty dependencies file for bench_fig19_format_params.
# This may be replaced when dependencies are built.
