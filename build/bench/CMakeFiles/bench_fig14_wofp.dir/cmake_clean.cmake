file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_wofp.dir/bench_fig14_wofp.cc.o"
  "CMakeFiles/bench_fig14_wofp.dir/bench_fig14_wofp.cc.o.d"
  "bench_fig14_wofp"
  "bench_fig14_wofp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_wofp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
