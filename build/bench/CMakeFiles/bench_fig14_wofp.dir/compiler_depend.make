# Empty compiler generated dependencies file for bench_fig14_wofp.
# This may be replaced when dependencies are built.
