# Empty compiler generated dependencies file for bench_ablation_tiers.
# This may be replaced when dependencies are built.
