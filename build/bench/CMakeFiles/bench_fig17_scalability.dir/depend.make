# Empty dependencies file for bench_fig17_scalability.
# This may be replaced when dependencies are built.
