file(REMOVE_RECURSE
  "CMakeFiles/bench_traffic_analysis.dir/bench_traffic_analysis.cc.o"
  "CMakeFiles/bench_traffic_analysis.dir/bench_traffic_analysis.cc.o.d"
  "bench_traffic_analysis"
  "bench_traffic_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traffic_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
