file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_competitors.dir/bench_fig18_competitors.cc.o"
  "CMakeFiles/bench_fig18_competitors.dir/bench_fig18_competitors.cc.o.d"
  "bench_fig18_competitors"
  "bench_fig18_competitors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_competitors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
