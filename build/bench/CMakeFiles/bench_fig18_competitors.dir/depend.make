# Empty dependencies file for bench_fig18_competitors.
# This may be replaced when dependencies are built.
