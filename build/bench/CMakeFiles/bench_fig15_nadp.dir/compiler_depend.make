# Empty compiler generated dependencies file for bench_fig15_nadp.
# This may be replaced when dependencies are built.
