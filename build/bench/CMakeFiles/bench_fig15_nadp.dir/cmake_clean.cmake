file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_nadp.dir/bench_fig15_nadp.cc.o"
  "CMakeFiles/bench_fig15_nadp.dir/bench_fig15_nadp.cc.o.d"
  "bench_fig15_nadp"
  "bench_fig15_nadp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_nadp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
