# Empty dependencies file for bench_table2_thread_alloc.
# This may be replaced when dependencies are built.
