file(REMOVE_RECURSE
  "libomega_bench_util.a"
)
