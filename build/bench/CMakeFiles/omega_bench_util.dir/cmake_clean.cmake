file(REMOVE_RECURSE
  "CMakeFiles/omega_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/omega_bench_util.dir/bench_util.cc.o.d"
  "libomega_bench_util.a"
  "libomega_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
