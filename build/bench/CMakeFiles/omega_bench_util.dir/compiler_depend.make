# Empty compiler generated dependencies file for omega_bench_util.
# This may be replaced when dependencies are built.
