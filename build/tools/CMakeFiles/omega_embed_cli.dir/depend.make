# Empty dependencies file for omega_embed_cli.
# This may be replaced when dependencies are built.
