file(REMOVE_RECURSE
  "CMakeFiles/omega_embed_cli.dir/omega_embed_main.cc.o"
  "CMakeFiles/omega_embed_cli.dir/omega_embed_main.cc.o.d"
  "omega_embed"
  "omega_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omega_embed_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
