
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spmm_test.cc" "tests/CMakeFiles/spmm_test.dir/spmm_test.cc.o" "gcc" "tests/CMakeFiles/spmm_test.dir/spmm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/omega_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_numa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/omega_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
