# Empty compiler generated dependencies file for multisocket_test.
# This may be replaced when dependencies are built.
