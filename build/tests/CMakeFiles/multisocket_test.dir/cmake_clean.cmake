file(REMOVE_RECURSE
  "CMakeFiles/multisocket_test.dir/multisocket_test.cc.o"
  "CMakeFiles/multisocket_test.dir/multisocket_test.cc.o.d"
  "multisocket_test"
  "multisocket_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multisocket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
