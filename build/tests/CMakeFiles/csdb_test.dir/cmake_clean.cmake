file(REMOVE_RECURSE
  "CMakeFiles/csdb_test.dir/csdb_test.cc.o"
  "CMakeFiles/csdb_test.dir/csdb_test.cc.o.d"
  "csdb_test"
  "csdb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
