# Empty compiler generated dependencies file for csdb_test.
# This may be replaced when dependencies are built.
