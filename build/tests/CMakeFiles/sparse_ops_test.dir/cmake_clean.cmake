file(REMOVE_RECURSE
  "CMakeFiles/sparse_ops_test.dir/sparse_ops_test.cc.o"
  "CMakeFiles/sparse_ops_test.dir/sparse_ops_test.cc.o.d"
  "sparse_ops_test"
  "sparse_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
